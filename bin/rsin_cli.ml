(* rsin: command-line front end for the RSIN library.

   Subcommands:
     info      - describe a network topology
     dot       - emit a Graphviz rendering of a network
     schedule  - schedule a request/resource snapshot
     trace     - run the distributed token architecture and print the bus trace
     blocking  - Monte-Carlo blocking-probability estimate
     simulate  - dynamic discrete-time simulation
     replay    - serve a recorded/synthetic workload through the online engine

   Network specifications (the NET argument):
     omega:N         Lawrie Omega, N a power of two
     omega-paper:N   Omega with the paper's input numbering
     omega+E:N       Omega with E extra stages
     butterfly:N     indirect binary n-cube
     baseline:N      Wu-Feng baseline
     benes:N         Benes rearrangeable network
     gamma:N         Parker-Raghavendra gamma network
     adm:N           augmented-data-manipulator-style network
     flip:N          Batcher Flip network (inverse Omega)
     delta:Q^S       delta network, radix Q, S stages
     delta-ab:AxB^S  asymmetric delta, A^S processors x B^S resources
     clos:M,N,R      3-stage Clos
     crossbar:P,R    P x R crossbar *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Scheduler = Rsin_core.Scheduler
module Heuristic = Rsin_core.Heuristic
module Token_sim = Rsin_distributed.Token_sim
module Bus = Rsin_distributed.Status_bus
module Blocking = Rsin_sim.Blocking
module Dynamic = Rsin_sim.Dynamic
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng
module Table = Rsin_util.Table
module Fault = Rsin_fault.Fault
module Solver = Rsin_flow.Solver
module Obs = Rsin_obs.Obs
module Trace = Rsin_obs.Trace
module Metrics = Rsin_obs.Metrics
module Bench_report = Rsin_obs.Bench_report
module Json = Rsin_util.Json
module Guard_policy = Rsin_guard.Policy
open Cmdliner

(* --- network specification parsing -------------------------------------- *)

let rec parse_net spec =
  let fail msg = Error (`Msg msg) in
  match String.index_opt spec ':' with
  | None -> fail "network spec must look like omega:8 (see --help)"
  | Some i ->
    let kind = String.sub spec 0 i in
    let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
    let int_arg () =
      match int_of_string_opt arg with
      | Some n -> Ok n
      | None -> fail (Printf.sprintf "bad size %S" arg)
    in
    (try
       match kind with
       | "omega" -> Result.map Builders.omega (int_arg ())
       | "omega-paper" -> Result.map Builders.omega_paper (int_arg ())
       | "butterfly" | "cube" -> Result.map Builders.butterfly (int_arg ())
       | "baseline" -> Result.map Builders.baseline (int_arg ())
       | "benes" -> Result.map Builders.benes (int_arg ())
       | "gamma" -> Result.map Builders.gamma (int_arg ())
       | "flip" -> Result.map Builders.flip (int_arg ())
       | "adm" -> Result.map Builders.adm (int_arg ())
       | "delta" ->
         (match String.split_on_char '^' arg with
         | [ q; s ] ->
           (match (int_of_string_opt q, int_of_string_opt s) with
           | Some radix, Some stages -> Ok (Builders.delta ~radix ~stages)
           | _ -> fail "delta spec: delta:Q^S")
         | _ -> fail "delta spec: delta:Q^S")
       | "delta-ab" ->
         (match String.split_on_char '^' arg with
         | [ ab; s ] ->
           (match
              ( List.filter_map int_of_string_opt (String.split_on_char 'x' ab),
                int_of_string_opt s )
            with
           | [ a; b ], Some stages -> Ok (Builders.delta_ab ~a ~b ~stages)
           | _ -> fail "delta-ab spec: delta-ab:AxB^S")
         | _ -> fail "delta-ab spec: delta-ab:AxB^S")
       | "multi" ->
         (* multi:K:SPEC — K disjoint planes of any base spec, e.g.
            multi:4:omega:256 is a 1024-port four-plane Omega. This is
            the natural input of [rsin serve]: each plane shards onto
            its own core. *)
         (match String.index_opt arg ':' with
         | Some j ->
           let planes = String.sub arg 0 j in
           let sub = String.sub arg (j + 1) (String.length arg - j - 1) in
           (match int_of_string_opt planes with
           | Some planes when planes >= 1 ->
             Result.map (Builders.multiplane ~planes) (parse_net sub)
           | _ -> fail "multi spec: multi:K:SPEC (K >= 1)")
         | None -> fail "multi spec: multi:K:SPEC")
       | "clos" ->
         (match List.filter_map int_of_string_opt (String.split_on_char ',' arg) with
         | [ m; n; r ] -> Ok (Builders.clos ~m ~n ~r)
         | _ -> fail "clos spec: clos:M,N,R")
       | "crossbar" ->
         (match List.filter_map int_of_string_opt (String.split_on_char ',' arg) with
         | [ p; r ] -> Ok (Builders.crossbar ~n_procs:p ~n_res:r)
         | _ -> fail "crossbar spec: crossbar:P,R")
       | _ ->
         if String.length kind > 6 && String.sub kind 0 6 = "omega+" then
           match
             ( int_of_string_opt (String.sub kind 6 (String.length kind - 6)),
               int_of_string_opt arg )
           with
           | Some extra, Some n -> Ok (Builders.extra_stage_omega n ~extra)
           | _ -> fail "extra-stage spec: omega+E:N"
         else fail (Printf.sprintf "unknown network kind %S" kind)
     with Invalid_argument msg -> fail msg)

let net_conv =
  Arg.conv
    ( parse_net,
      fun fmt net -> Format.fprintf fmt "%s" (Network.name net) )

let net_arg =
  Arg.(
    required
    & pos 0 (some net_conv) None
    & info [] ~docv:"NET" ~doc:"Network specification, e.g. omega:8.")

(* --- shared option parsing ----------------------------------------------- *)

let int_list_conv =
  Arg.conv
    ( (fun s ->
        let parts = String.split_on_char ',' (String.trim s) in
        let parsed = List.filter_map int_of_string_opt parts in
        if List.length parsed = List.length parts && parts <> [] then Ok parsed
        else Error (`Msg "expected a comma-separated integer list")),
      fun fmt l ->
        Format.fprintf fmt "%s" (String.concat "," (List.map string_of_int l)) )

let requests_arg =
  Arg.(
    value
    & opt (some int_list_conv) None
    & info [ "requests" ] ~docv:"P,P,..."
        ~doc:"Requesting processors (default: a random snapshot).")

let free_arg =
  Arg.(
    value
    & opt (some int_list_conv) None
    & info [ "free" ] ~docv:"R,R,..."
        ~doc:"Free resource ports (default: a random snapshot).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.")

let pre_arg =
  Arg.(
    value & opt int 0
    & info [ "pre" ] ~doc:"Random circuits to pre-establish before scheduling.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Record a trace of the run and write it to $(docv).")

let trace_format_arg =
  let fmt_conv = Arg.enum [ ("jsonl", Trace.Jsonl); ("chrome", Trace.Chrome) ] in
  Arg.(
    value & opt fmt_conv Trace.Jsonl
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:"Trace file format: $(b,jsonl) (one JSON event per line) or \
              $(b,chrome) (trace_event array for chrome://tracing / \
              Perfetto).")

let solver_arg =
  (* Names and doc come straight from the registry, so the help text
     cannot drift from the solvers actually linked in. *)
  let names = Solver.names () in
  let solver_conv = Arg.enum (List.map (fun n -> (n, n)) names) in
  Arg.(
    value & opt solver_conv "dinic"
    & info [ "solver" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "Max-flow solver for the optimal (flow-based) scheduling paths: \
              %s. Schedulers that do not run a flow solver ignore it. The \
              warm engine's incremental augmentation is part of its \
              definition, but $(b,dinic-csr) and $(b,mincost-csr) select \
              where it runs: warm cycles then execute on the flat \
              zero-allocation CSR core instead of the adjacency graph."
             (String.concat ", "
                (List.map (fun n -> Printf.sprintf "$(b,%s)" n) names))))

(* The option quartet shared by every simulating subcommand, bundled
   into one term so a command picks up all four (with identical docs)
   by composing [common_term] exactly once. *)
type common = {
  seed : int;
  trace_out : string option;
  trace_format : Trace.format;
  solver : string;
}

let common_term =
  let mk seed trace_out trace_format solver =
    { seed; trace_out; trace_format; solver }
  in
  Term.(const mk $ seed_arg $ trace_out_arg $ trace_format_arg $ solver_arg)

(* [None] for the default solver so default runs keep their historical
   entry points (same counters, same trace spans). *)
let solver_of c = if c.solver = "dinic" then None else Some (Solver.get c.solver)

let schedule_t1 ?obs c net ~requests ~free =
  let module T1 = Rsin_core.Transform1 in
  match solver_of c with
  | None -> T1.schedule ?obs net ~requests ~free
  | Some s -> T1.solve_with ?obs s (T1.build net ~requests ~free)

(* Runs [f] with a recording observer when --trace-out was given (writing
   the trace afterwards), with no observer otherwise. *)
let with_obs trace_out format f =
  match trace_out with
  | None -> f None
  | Some file ->
    let obs = Obs.recording () in
    let result = f (Some obs) in
    (try Trace.write_file obs.Obs.trace ~format file
     with Sys_error msg ->
       Printf.eprintf "rsin: cannot write trace: %s\n" msg;
       exit 1);
    Printf.printf "trace: %d event(s) -> %s\n" (Trace.event_count obs.Obs.trace)
      file;
    result

let snapshot rng net requests free =
  let requests, free =
    match (requests, free) with
    | Some r, Some f -> (r, f)
    | r, f ->
      let rr, ff = Workload.snapshot rng net in
      (Option.value r ~default:rr, Option.value f ~default:ff)
  in
  let busy_p, busy_r = Workload.occupied_endpoints net in
  ( List.filter (fun p -> not (List.mem p busy_p)) requests,
    List.filter (fun r -> not (List.mem r busy_r)) free )

(* --- info ------------------------------------------------------------------ *)

let info_cmd =
  let run net =
    Format.printf "%a@." Network.pp_summary net;
    Printf.printf "full access: %b\n" (Builders.full_access net);
    for s = 0 to Network.stages net - 1 do
      let boxes = Network.boxes_in_stage net s in
      let spec = Network.box_spec net (List.hd boxes) in
      Printf.printf "stage %d: %d boxes of %dx%d\n" s (List.length boxes)
        spec.Network.fan_in spec.Network.fan_out
    done
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe a network topology")
    Term.(const run $ net_arg)

(* --- dot ------------------------------------------------------------------- *)

let dot_cmd =
  let run net pre seed =
    let rng = Prng.create seed in
    if pre > 0 then ignore (Workload.preoccupy rng net ~circuits:pre);
    print_string (Network.to_dot net)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a Graphviz rendering of the network")
    Term.(const run $ net_arg $ pre_arg $ seed_arg)

(* --- schedule ---------------------------------------------------------------- *)

let scheduler_enum =
  Arg.enum
    [ ("optimal", `Optimal); ("distributed", `Distributed);
      ("first-fit", `First_fit); ("random-fit", `Random_fit);
      ("address-map", `Address_map) ]

let scheduler_arg =
  Arg.(
    value & opt scheduler_enum `Optimal
    & info [ "scheduler" ] ~docv:"S"
        ~doc:"One of optimal, distributed, first-fit, random-fit, address-map.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"With the optimal scheduler: print the min-cut bottleneck \
              limiting the allocation.")

let schedule_cmd =
  let run net requests free scheduler pre explain c =
    let rng = Prng.create c.seed in
    if pre > 0 then ignore (Workload.preoccupy rng net ~circuits:pre);
    let requests, free = snapshot rng net requests free in
    Printf.printf "requests: %s\nfree:     %s\n"
      (String.concat "," (List.map string_of_int requests))
      (String.concat "," (List.map string_of_int free));
    with_obs c.trace_out c.trace_format @@ fun obs ->
    let mapping, allocated =
      match scheduler with
      | `Optimal ->
        let tr = Rsin_core.Transform1.build net ~requests ~free in
        let o =
          match solver_of c with
          | None -> Rsin_core.Transform1.solve ?obs tr
          | Some s -> Rsin_core.Transform1.solve_with ?obs s tr
        in
        if explain then begin
          let cut = Rsin_core.Transform1.bottleneck tr in
          Printf.printf "bottleneck (min cut, %d elements):\n" (List.length cut);
          List.iter
            (function
              | `Link l ->
                Printf.printf "  link %d: %s -> %s\n" l
                  (Network.endpoint_to_string (Network.link_src net l))
                  (Network.endpoint_to_string (Network.link_dst net l))
              | `Proc p -> Printf.printf "  processor p%d (its own request arc)\n" p
              | `Res r -> Printf.printf "  resource r%d (its own resource arc)\n" r)
            cut
        end;
        (o.Rsin_core.Transform1.mapping, o.Rsin_core.Transform1.allocated)
      | `Distributed ->
        let o = Token_sim.run ?obs net ~requests ~free in
        (o.Token_sim.mapping, o.Token_sim.allocated)
      | `First_fit | `Random_fit | `Address_map ->
        let policy =
          match scheduler with
          | `First_fit -> Heuristic.First_fit
          | `Random_fit -> Heuristic.Random_fit rng
          | _ -> Heuristic.Address_map rng
        in
        let o = Heuristic.schedule net ~requests ~free policy in
        (o.Heuristic.mapping, o.Heuristic.allocated)
    in
    Printf.printf "allocated %d/%d:\n" allocated (List.length requests);
    List.iter
      (fun (p, r) -> Printf.printf "  p%d -> r%d\n" p r)
      (List.sort compare mapping)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Schedule a request/resource snapshot")
    Term.(
      const run $ net_arg $ requests_arg $ free_arg $ scheduler_arg $ pre_arg
      $ explain_arg $ common_term)

(* --- trace ------------------------------------------------------------------- *)

(* "CLK:FAULT,CLK:FAULT,..." with FAULT one of linkN / boxN / resN /
   stuck0=eK / stuck1=eK / clear=eK. *)
let mid_faults_conv =
  let bus_event = function
    | "e1" -> Some Bus.E1_request_pending
    | "e2" -> Some Bus.E2_resource_ready
    | "e3" -> Some Bus.E3_request_token_phase
    | "e4" -> Some Bus.E4_resource_token_phase
    | "e5" -> Some Bus.E5_path_registration
    | "e6" -> Some Bus.E6_rs_received_token
    | "e7" -> Some Bus.E7_rq_bonded
    | _ -> None
  in
  let parse_fault s =
    let tail prefix =
      let lp = String.length prefix in
      if String.length s > lp && String.sub s 0 lp = prefix then
        Some (String.sub s lp (String.length s - lp))
      else None
    in
    let num prefix mk =
      match Option.bind (tail prefix) int_of_string_opt with
      | Some i when i >= 0 -> Some (mk i)
      | _ -> None
    in
    let bit prefix mk =
      Option.map mk (Option.bind (tail prefix) bus_event)
    in
    List.find_map Fun.id
      [ num "link" (fun l -> Token_sim.Dead_link l);
        num "box" (fun b -> Token_sim.Dead_box b);
        num "res" (fun r -> Token_sim.Dead_res r);
        bit "stuck0=" (fun e -> Token_sim.Stuck_bit (e, Bus.Stuck_at_0));
        bit "stuck1=" (fun e -> Token_sim.Stuck_bit (e, Bus.Stuck_at_1));
        bit "clear=" (fun e -> Token_sim.Clear_bit e) ]
  in
  let parse_entry s =
    match String.index_opt s ':' with
    | None ->
      Error (`Msg (Printf.sprintf "bad fault %S: expected CLOCK:FAULT" s))
    | Some i ->
      let clk = String.sub s 0 i
      and f = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt clk with
      | Some clk when clk >= 0 ->
        (match parse_fault f with
        | Some mf -> Ok (clk, mf)
        | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "bad fault %S: FAULT is linkN, boxN, resN, stuck0=eK, \
                   stuck1=eK or clear=eK"
                  s)))
      | _ ->
        Error
          (`Msg
             (Printf.sprintf "bad fault %S: CLOCK must be an integer >= 0" s)))
  in
  let parse spec =
    List.fold_left
      (fun acc s ->
        match acc with
        | Error _ as e -> e
        | Ok l -> Result.map (fun e -> e :: l) (parse_entry (String.trim s)))
      (Ok [])
      (String.split_on_char ',' spec)
    |> Result.map List.rev
  in
  Arg.conv
    ( parse,
      fun fmt sched ->
        Format.fprintf fmt "%s"
          (String.concat ","
             (List.map
                (fun (clk, f) ->
                  Printf.sprintf "%d:%s" clk (Token_sim.mid_fault_name f))
                sched)) )

let mid_faults_arg =
  Arg.(
    value
    & opt mid_faults_conv []
    & info [ "mid-cycle-faults" ] ~docv:"SPEC"
        ~doc:"Inject faults mid-cycle at status-bus clock granularity: a \
              comma-separated list of $(i,CLOCK):$(i,FAULT) entries, FAULT \
              one of $(b,linkN), $(b,boxN), $(b,resN) (the element dies at \
              that clock, killing its tokens and markings), \
              $(b,stuck0=eK) / $(b,stuck1=eK) (status-bus bit EK sticks at \
              0/1) or $(b,clear=eK) (the stuck-at clears). The protocol \
              detects each fault (phase watchdogs, driver readback, \
              link-level aborts), rolls back the damaged iteration and \
              re-runs on the surviving subnetwork.")

let trace_cmd =
  let run net requests free pre mid_faults c =
    let rng = Prng.create c.seed in
    if pre > 0 then ignore (Workload.preoccupy rng net ~circuits:pre);
    let requests, free = snapshot rng net requests free in
    with_obs c.trace_out c.trace_format @@ fun obs ->
    let rep =
      try Token_sim.run ?obs ~faults:mid_faults net ~requests ~free
      with Invalid_argument msg ->
        Printf.eprintf "rsin: %s\n" msg;
        exit 1
    in
    Printf.printf "allocated %d/%d in %d iteration(s), %d clock periods\n"
      rep.Token_sim.allocated rep.Token_sim.requested rep.Token_sim.iterations
      rep.Token_sim.total_clocks;
    (* Fault-free runs keep the historical output byte for byte; the
       recovery summary appears only when faults were injected. *)
    if mid_faults <> [] then begin
      let r = rep.Token_sim.recovery in
      Printf.printf
        "recovery: %d fault(s) applied, %d watchdog fire(s), %d iteration \
         abort(s), %d cycle restart(s), %d retry(ies), %d wait clock(s)%s\n"
        r.Token_sim.faults_applied r.Token_sim.watchdog_fires
        r.Token_sim.iteration_aborts r.Token_sim.cycle_restarts
        r.Token_sim.retries r.Token_sim.wait_clocks
        (if r.Token_sim.completed then "" else " -- gave up")
    end;
    print_newline ();
    Format.printf "%a@?" Token_sim.pp_trace rep
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run the distributed token architecture and print the bus trace")
    Term.(
      const run $ net_arg $ requests_arg $ free_arg $ pre_arg $ mid_faults_arg
      $ common_term)

(* --- blocking ------------------------------------------------------------------ *)

let blocking_cmd =
  let trials_arg =
    Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Monte-Carlo trials.")
  in
  let density_arg name =
    Arg.(
      value & opt float 0.5
      & info [ name ] ~doc:"Density in [0,1] for the random snapshots.")
  in
  let run spec trials req_d res_d pre c =
    let scheds =
      [ Blocking.Optimal; Blocking.First_fit; Blocking.Random_fit;
        Blocking.Address_map ]
    in
    let cfg =
      { Blocking.trials; req_density = req_d; res_density = res_d;
        pre_circuits = pre }
    in
    with_obs c.trace_out c.trace_format @@ fun obs ->
    Table.print
      ~header:[ "scheduler"; "blocking"; "ci95"; "utilization"; "trials" ]
      (List.map
         (fun s ->
           let e =
             Blocking.estimate ?obs ~config:cfg ?solver:(solver_of c)
               ~scheduler:s (Prng.create c.seed)
               (fun () ->
                 match parse_net spec with
                 | Ok net -> net
                 | Error (`Msg m) -> failwith m)
           in
           [ Blocking.scheduler_name s;
             Table.fpct e.Blocking.mean_blocking;
             "+-" ^ Table.fpct e.Blocking.ci95;
             Table.fpct e.Blocking.utilization;
             string_of_int e.Blocking.trials_used ])
         scheds)
  in
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NET" ~doc:"Network specification, e.g. omega:8.")
  in
  Cmd.v
    (Cmd.info "blocking" ~doc:"Monte-Carlo blocking-probability estimate")
    Term.(
      const run $ spec_arg $ trials_arg $ density_arg "req-density"
      $ density_arg "res-density" $ pre_arg $ common_term)

(* --- simulate ------------------------------------------------------------------ *)

let simulate_cmd =
  let arrival_arg =
    Arg.(
      value & opt float 0.2
      & info [ "arrival" ] ~doc:"Per-processor arrival probability per slot.")
  in
  let slots_arg =
    Arg.(value & opt int 2000 & info [ "slots" ] ~doc:"Measured slots.")
  in
  let service_arg =
    Arg.(value & opt float 4.0 & info [ "service" ] ~doc:"Mean service time.")
  in
  let run net arrival slots service c =
    let params =
      { Dynamic.arrival_prob = arrival; transmission_time = 1;
        mean_service = service; slots; warmup = slots / 5 }
    in
    with_obs c.trace_out c.trace_format @@ fun obs ->
    let m =
      Dynamic.run ?obs ?solver:(solver_of c) (Prng.create c.seed) net params
    in
    Table.print
      ~header:[ "metric"; "value" ]
      [
        [ "throughput (tasks/slot)"; Table.ffix 3 m.Dynamic.throughput ];
        [ "offered load (tasks/slot)"; Table.ffix 3 m.Dynamic.offered_load ];
        [ "resource utilization"; Table.fpct m.Dynamic.resource_utilization ];
        [ "mean queue per processor"; Table.ffix 2 m.Dynamic.mean_queue ];
        [ "mean wait (slots)"; Table.ffix 2 m.Dynamic.mean_wait ];
        [ "completed tasks"; string_of_int m.Dynamic.completed ];
        [ "blocked scheduling cycles"; Table.fpct m.Dynamic.blocked_cycle_fraction ];
      ]
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Dynamic discrete-time simulation")
    Term.(
      const run $ net_arg $ arrival_arg $ slots_arg $ service_arg
      $ common_term)

(* --- shared packet-fabric options -------------------------------------------- *)

(* Names and doc come from the arbiter registry, mirroring solver_arg. *)
let arbiter_arg =
  let names = Rsin_packet.Arbiter.names () in
  let arb_conv = Arg.enum (List.map (fun n -> (n, n)) names) in
  Arg.(
    value & opt arb_conv "islip"
    & info [ "arbiter" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "Per-switchbox crossbar arbiter for the packet fabric: %s."
             (String.concat ", "
                (List.map (fun n -> Printf.sprintf "$(b,%s)" n) names))))

let vq_depth_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "vq-depth" ] ~docv:"K"
        ~doc:"Per-VOQ buffer capacity in flits (default: unbounded).")

let flits_arg ~default =
  Arg.(
    value & opt int default
    & info [ "flits" ] ~docv:"F"
        ~doc:"Flits per task packet on the packet fabric.")

let check_packet_args ~vq_depth ~flits =
  (match vq_depth with
  | Some k when k < 1 ->
    Printf.eprintf "rsin: --vq-depth must be >= 1\n";
    exit 1
  | Some _ | None -> ());
  if flits < 1 then begin
    Printf.eprintf "rsin: --flits must be >= 1\n";
    exit 1
  end

(* --- shared engine/workload options ------------------------------------------ *)

(* Every flag `rsin replay` and `rsin serve` have in common — the
   synthetic-workload family, all the Engine.Config knobs and the fault
   injection plan — factored into one record + term bundle (like
   [common_term]) so the two subcommands cannot drift: serve composes
   [engine_opts_term] verbatim. *)
(* Strictly-positive argument converters: a zero or negative --mtbf,
   --mttr or --checkpoint-every is a flag-syntax error rejected at parse
   time, before any network or engine is built. *)
let pos_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0. && Float.is_finite f -> Ok f
    | Some _ -> Error (`Msg (Printf.sprintf "value %s must be > 0" s))
    | None -> Error (`Msg (Printf.sprintf "invalid value '%s', expected a number" s))
  in
  Arg.conv ~docv:"VAL" (parse, fun ppf f -> Format.fprintf ppf "%g" f)

let pos_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg (Printf.sprintf "value %s must be > 0" s))
    | None ->
      Error (`Msg (Printf.sprintf "invalid value '%s', expected an integer" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

type engine_opts = {
  eo_discipline : [ `Uniform | `Priority ];
  eo_levels : int;
  eo_slots : int;
  eo_arrival : float;
  eo_service : float;
  eo_cancel : float;
  eo_slack : int option;
  eo_threshold : int;
  eo_defer : int;
  eo_trans : int;
  eo_faults : bool;
  eo_mtbf : float;
  eo_mttr : float;
  eo_granularity : [ `Slot | `Clock ];
  eo_heartbeat : int;
  eo_guard : bool;
  eo_queue_bound : int;
  eo_shed : Guard_policy.shed_policy;
  eo_retry_budget : int;
  eo_flap_k : int;
  eo_flap_window : int;
  eo_quarantine : int;
}

let engine_opts_term =
  let discipline_arg =
    let disc_conv = Arg.enum [ ("uniform", `Uniform); ("priority", `Priority) ] in
    Arg.(
      value & opt disc_conv `Uniform
      & info [ "discipline" ] ~docv:"DISC"
          ~doc:"Serving discipline: $(b,uniform) (Transformation 1: any \
                maximum allocation per cycle) or $(b,priority) \
                (Transformation 2: maximum allocation, then maximum total \
                priority of the queue heads served; priorities come from \
                the trace).")
  in
  let levels_arg =
    Arg.(
      value & opt int 0
      & info [ "priority-levels" ] ~docv:"K"
          ~doc:"Synthetic trace: draw each task's priority uniformly from \
                [1, K] (0, the default, leaves all priorities 0).")
  in
  let slots_arg =
    Arg.(value & opt int 200 & info [ "slots" ] ~doc:"Synthetic trace: arrival slots.")
  in
  let arrival_arg =
    Arg.(
      value & opt float 0.2
      & info [ "arrival" ]
          ~doc:"Synthetic trace: per-processor arrival probability per slot.")
  in
  let service_arg =
    Arg.(
      value & opt float 4.0
      & info [ "service" ] ~doc:"Synthetic trace: mean service time.")
  in
  let cancel_arg =
    Arg.(
      value & opt float 0.0
      & info [ "cancel" ] ~doc:"Synthetic trace: cancellation probability.")
  in
  let slack_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-slack" ] ~docv:"K"
          ~doc:"Synthetic trace: deadline uniform in [t+1, t+K].")
  in
  let threshold_arg =
    Arg.(
      value & opt int 1
      & info [ "threshold" ]
          ~doc:"Pending requests to batch before entering a scheduling cycle.")
  in
  let defer_arg =
    Arg.(
      value & opt int 16
      & info [ "max-defer" ]
          ~doc:"Force a cycle once the oldest pending request is this old.")
  in
  let trans_arg =
    Arg.(
      value & opt int 1
      & info [ "transmission" ] ~doc:"Slots a circuit stays established.")
  in
  let faults_arg =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:"Inject a random fault/repair schedule (seeded MTBF/MTTR \
                renewal process over links, boxes and resource ports) into \
                the served trace. A fault tears down circuits transmitting \
                through the dead element and re-queues their tasks at the \
                head of their queue.")
  in
  let mtbf_arg =
    Arg.(
      value & opt pos_float_conv 80.0
      & info [ "mtbf" ] ~docv:"SLOTS"
          ~doc:"Mean slots between failures per element (with $(b,--faults)); \
                must be > 0.")
  in
  let mttr_arg =
    Arg.(
      value & opt pos_float_conv 20.0
      & info [ "mttr" ] ~docv:"SLOTS"
          ~doc:"Mean slots to repair a failed element (with $(b,--faults)); \
                must be > 0.")
  in
  let granularity_arg =
    let gran_conv = Arg.enum [ ("slot", `Slot); ("clock", `Clock) ] in
    Arg.(
      value & opt gran_conv `Slot
      & info [ "fault-clock-granularity" ] ~docv:"G"
          ~doc:"With $(b,--faults): $(b,slot) (default) applies each fault \
                at its slot's cycle boundary; $(b,clock) additionally draws \
                a uniform intra-cycle status-bus clock per fault, so under \
                $(b,--mode token) the element dies mid-cycle and the \
                distributed protocol must detect it and recover. Other \
                modes ignore the clocks.")
  in
  let heartbeat_arg =
    Arg.(
      value & opt int 0
      & info [ "heartbeat" ] ~docv:"N"
          ~doc:"Every $(docv) consumed trace events, print one progress line \
                (slot, events, cycles, allocated, solver work) to stderr. 0 \
                (the default) disables the heartbeat.")
  in
  let guard_arg =
    Arg.(
      value & flag
      & info [ "guard" ]
          ~doc:"Enable the robustness guard layer: admission control \
                (bounded pending queues, see $(b,--queue-bound) and \
                $(b,--shed-policy)), capped-exponential backoff \
                re-admission of fault victims with a per-task retry budget \
                ($(b,--retry-budget)), and flap-detecting element \
                quarantine ($(b,--flap-k), $(b,--flap-window), \
                $(b,--quarantine-slots)). Off by default: without it the \
                engine behaves exactly as before the guard layer existed.")
  in
  let queue_bound_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:"With $(b,--guard): max pending tasks per processor queue \
                before admission control sheds (0 = unbounded).")
  in
  let shed_arg =
    let shed_conv =
      Arg.enum
        [ ("drop-tail", Guard_policy.Drop_tail);
          ("deadline-aware", Guard_policy.Deadline_aware) ]
    in
    Arg.(
      value & opt shed_conv Guard_policy.Drop_tail
      & info [ "shed-policy" ] ~docv:"POLICY"
          ~doc:"With $(b,--guard): what a full queue sheds — \
                $(b,drop-tail) (the newcomer) or $(b,deadline-aware) (the \
                pending task with least remaining deadline slack, the one \
                most likely to expire anyway).")
  in
  let retry_budget_arg =
    Arg.(
      value & opt int 8
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:"With $(b,--guard): teardowns a task survives before the \
                engine gives it up (0 = give up on first victimization).")
  in
  let flap_k_arg =
    Arg.(
      value & opt int 3
      & info [ "flap-k" ] ~docv:"K"
          ~doc:"With $(b,--guard): faults within $(b,--flap-window) slots \
                that quarantine an element (0 disables quarantine).")
  in
  let flap_window_arg =
    Arg.(
      value & opt pos_int_conv 50
      & info [ "flap-window" ] ~docv:"SLOTS"
          ~doc:"With $(b,--guard): sliding fault-counting window.")
  in
  let quarantine_arg =
    Arg.(
      value & opt pos_int_conv 100
      & info [ "quarantine-slots" ] ~docv:"SLOTS"
          ~doc:"With $(b,--guard): cooling-off period of a quarantined \
                element (excluded from allocation even while nominally up).")
  in
  let mk eo_discipline eo_levels eo_slots eo_arrival eo_service eo_cancel
      eo_slack eo_threshold eo_defer eo_trans eo_faults eo_mtbf eo_mttr
      eo_granularity eo_heartbeat eo_guard eo_queue_bound eo_shed
      eo_retry_budget eo_flap_k eo_flap_window eo_quarantine =
    { eo_discipline; eo_levels; eo_slots; eo_arrival; eo_service; eo_cancel;
      eo_slack; eo_threshold; eo_defer; eo_trans; eo_faults; eo_mtbf; eo_mttr;
      eo_granularity; eo_heartbeat; eo_guard; eo_queue_bound; eo_shed;
      eo_retry_budget; eo_flap_k; eo_flap_window; eo_quarantine }
  in
  Term.(
    const mk $ discipline_arg $ levels_arg $ slots_arg $ arrival_arg
    $ service_arg $ cancel_arg $ slack_arg $ threshold_arg $ defer_arg
    $ trans_arg $ faults_arg $ mtbf_arg $ mttr_arg $ granularity_arg
    $ heartbeat_arg $ guard_arg $ queue_bound_arg $ shed_arg
    $ retry_budget_arg $ flap_k_arg $ flap_window_arg $ quarantine_arg)

(* The validated Engine.Config the shared flags describe. Exits with a
   flag-level diagnostic on a bad combination — the smart constructor is
   the single validation point. *)
let engine_config ~mode (o : engine_opts) c =
  let module Engine = Rsin_engine.Engine in
  let faults =
    if o.eo_faults then
      Some
        { Engine.Config.mtbf = o.eo_mtbf; mttr = o.eo_mttr;
          granularity = o.eo_granularity }
    else None
  in
  let discipline =
    match o.eo_discipline with
    | `Uniform -> Engine.Uniform
    | `Priority -> Engine.Priority
  in
  let guard =
    if not o.eo_guard then None
    else
      (* The jitter stream is seeded from the workload seed, so guarded
         runs are as reproducible as everything else under --seed. *)
      match
        Guard_policy.make ~queue_bound:o.eo_queue_bound
          ~shed_policy:o.eo_shed ~retry_budget:o.eo_retry_budget
          ~seed:c.seed ~flap_k:o.eo_flap_k ~flap_window:o.eo_flap_window
          ~quarantine_slots:o.eo_quarantine ()
      with
      | Ok g -> Some g
      | Error msg ->
        Printf.eprintf "rsin: %s\n" msg;
        exit 1
  in
  match
    Engine.Config.make ~mode ~discipline ~solver:c.solver
      ~transmission_time:o.eo_trans ~batch_threshold:o.eo_threshold
      ~max_defer:o.eo_defer ~heartbeat:o.eo_heartbeat ~faults ~guard ()
  with
  | Ok cfg -> cfg
  | Error msg ->
    Printf.eprintf "rsin: %s\n" msg;
    exit 1

(* Synthesize (or read) the workload the shared flags describe. *)
let engine_trace ?trace_file (o : engine_opts) net c =
  if o.eo_levels < 0 then begin
    Printf.eprintf "rsin: --priority-levels must be >= 0\n";
    exit 1
  end;
  match trace_file with
  | Some file ->
    (try Workload.read_trace file
     with Sys_error msg | Failure msg ->
       Printf.eprintf "rsin: cannot read trace: %s\n" msg;
       exit 1)
  | None ->
    Workload.synthesize ~mean_service:o.eo_service
      ?deadline_slack:o.eo_slack ~cancel_prob:o.eo_cancel
      ~priority_levels:o.eo_levels (Prng.create c.seed) net ~slots:o.eo_slots
      ~arrival_prob:o.eo_arrival

(* Weave the config's fault plan into the trace as Fault/Repair events
   (a no-op when the plan is absent). *)
let engine_inject_faults cfg net trace c =
  let module Engine = Rsin_engine.Engine in
  match cfg.Engine.Config.faults with
  | None -> trace
  | Some { Engine.Config.mtbf; mttr; granularity } ->
    let horizon =
      List.fold_left (fun acc e -> max acc (Workload.event_time e)) 0 trace
    in
    (* A sub-stream of the workload seed, so the same --seed gives the
       same arrivals with and without --faults. *)
    let frng = Prng.split (Prng.create c.seed) in
    let fevents =
      match granularity with
      | `Slot -> Workload.fault_events (Fault.inject frng net ~horizon ~mtbf ~mttr)
      | `Clock ->
        (* Same element schedule as `Slot for the same seed; each
           event just gains a uniform intra-cycle status-bus clock. *)
        Workload.fault_events_clocked
          (Fault.inject_clocked frng net ~horizon ~mtbf ~mttr ~clock_range:48)
    in
    Printf.printf "faults: %d element event(s) injected (mtbf %g, mttr %g)\n"
      (List.length fevents) mtbf mttr;
    List.stable_sort
      (fun a b -> compare (Workload.event_time a) (Workload.event_time b))
      (trace @ fevents)

(* The heartbeat hooks the config's period describes: the per-slot event
   pulse combined with running cycle tallies (the engine publishes its
   counters only at the end of the run). *)
let heartbeat_hooks ~label cfg =
  let module Engine = Rsin_engine.Engine in
  let heartbeat = cfg.Engine.Config.heartbeat in
  let cycles = ref 0 and alloc = ref 0 and work = ref 0 in
  let pulses = ref 0 in
  if heartbeat = 0 then (None, None)
  else
    ( Some
        (fun _net (info : Engine.cycle_info) ->
          incr cycles;
          alloc := !alloc + info.Engine.allocated;
          work := !work + info.Engine.work),
      Some
        (fun ~events ~time ->
          if events / heartbeat > !pulses then begin
            pulses := events / heartbeat;
            Printf.eprintf
              "heartbeat[%s]: slot=%d events=%d cycles=%d allocated=%d \
               work=%d\n%!"
              label time events !cycles !alloc !work
          end) )

(* --- replay ------------------------------------------------------------------- *)

let replay_cmd =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Replay the JSONL workload trace in $(docv) instead of \
                synthesizing one.")
  in
  let export_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"FILE"
          ~doc:"Write the served workload trace to $(docv) as JSONL (replay \
                it later with --trace).")
  in
  let mode_arg =
    let mode_conv =
      Arg.enum
        [ ("warm", `Warm); ("rebuild", `Rebuild); ("token", `Token);
          ("both", `Both); ("packet", `Packet) ]
    in
    Arg.(
      value & opt mode_conv `Both
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Scheduling strategy: $(b,warm) (persistent incremental flow \
                graph), $(b,rebuild) (from-scratch max-flow each cycle), \
                $(b,token) (every cycle runs on the distributed token \
                architecture; solver work counts status-bus clock periods, \
                and clocked trace faults strike mid-cycle), $(b,both) \
                (run warm and rebuild and compare solver work) or \
                $(b,packet) (serve the trace packet-switched on the \
                buffered VOQ fabric: tasks bind to a random free resource \
                before injection and the resource idles until the last \
                flit arrives — the Section II alternative the circuit \
                modes are measured against).")
  in
  let run net trace_file export mode (o : engine_opts) arbiter vq_depth flits
      c =
    let module Engine = Rsin_engine.Engine in
    if mode = `Packet then check_packet_args ~vq_depth ~flits;
    (* Mode `Both compares warm and rebuild, so the config is built per
       engine run; the Warm instance carries the shared fields every
       pre-run step (fault injection, heartbeat) reads. *)
    let config_for m = engine_config ~mode:m o c in
    let base_cfg =
      config_for
        (match mode with
        | `Rebuild -> Engine.Rebuild
        | `Token -> Engine.Token
        | `Warm | `Both | `Packet -> Engine.Warm)
    in
    let trace = engine_trace ?trace_file o net c in
    let trace = engine_inject_faults base_cfg net trace c in
    let has_faults =
      List.exists
        (function Workload.Fault _ | Workload.Repair _ -> true | _ -> false)
        trace
    in
    let discipline = base_cfg.Engine.Config.discipline in
    (match export with
    | Some file ->
      (try Workload.write_trace file trace
       with Sys_error msg ->
         Printf.eprintf "rsin: cannot write trace: %s\n" msg;
         exit 1);
      Printf.printf "exported %d event(s) -> %s\n" (List.length trace) file
    | None -> ());
    with_obs c.trace_out c.trace_format @@ fun obs ->
    if mode = `Packet then begin
      let module Preplay = Rsin_packet.Replay in
      let tasks =
        List.filter_map
          (function
            | Workload.Arrive { t; proc; service; _ } ->
              Some { Preplay.arrival = t; proc; service; flits }
            | Workload.Cancel _ | Workload.Fault _ | Workload.Repair _ -> None)
          trace
      in
      let cancels =
        List.length
          (List.filter (function Workload.Cancel _ -> true | _ -> false) trace)
      in
      if cancels > 0 then
        Printf.printf
          "note: %d cancel event(s) ignored (a bound packet task cannot be \
           withdrawn)\n"
          cancels;
      let fault_schedule =
        List.filter_map
          (function
            | Workload.Fault { t; element; _ } -> Some (t, Fault.down_of element)
            | Workload.Repair { t; element; _ } -> Some (t, Fault.up_of element)
            | Workload.Arrive _ | Workload.Cancel _ -> None)
          trace
      in
      let r =
        Preplay.run ?obs ?vq_depth ~faults:fault_schedule
          ~arbiter:(Rsin_packet.Arbiter.get arbiter)
          (Prng.create c.seed) net tasks
      in
      Printf.printf "packet fabric: arbiter=%s vq-depth=%s flits=%d\n" arbiter
        (match vq_depth with Some k -> string_of_int k | None -> "unbounded")
        flits;
      Table.print
        ~header:[ "metric"; "packet" ]
        ([ ("horizon (slots)", string_of_int r.Preplay.horizon);
           ("arrivals", string_of_int r.Preplay.arrivals);
           ("bound", string_of_int r.Preplay.bound);
           ("completed", string_of_int r.Preplay.completed);
           ("dropped", string_of_int r.Preplay.dropped);
           ("left pending", string_of_int r.Preplay.left_pending);
           ("mean response (slots)", Table.ffix 3 r.Preplay.mean_response);
           ("p95 response (slots)", Table.ffix 3 r.Preplay.p95_response);
           ("max response (slots)", string_of_int r.Preplay.max_response);
           ("throughput (tasks/slot)", Table.ffix 3 r.Preplay.throughput);
           ("serving utilization", Table.fpct r.Preplay.serving_utilization);
           ("reserved utilization", Table.fpct r.Preplay.reserved_utilization);
           ("reserved idle", Table.fpct r.Preplay.reserved_idle);
           ("arbiter grants", string_of_int r.Preplay.grants);
           ("arbiter conflicts", string_of_int r.Preplay.conflicts);
           ("flits injected", string_of_int r.Preplay.injected_flits);
           ("flits delivered", string_of_int r.Preplay.delivered_flits);
           ("flits dropped", string_of_int r.Preplay.dropped_flits) ]
         @ (if has_faults then
              [ ("faults applied", string_of_int r.Preplay.faults_applied);
                ("repairs applied", string_of_int r.Preplay.repairs_applied) ]
            else [])
        |> List.map (fun (a, b) -> [ a; b ]))
    end
    else begin
    let go m =
      let cfg = config_for m in
      let cycle_hook, event_hook =
        heartbeat_hooks ~label:(Engine.mode_name m) cfg
      in
      Engine.run ?obs ~config:cfg ?cycle_hook ?event_hook net trace
    in
    let reports =
      match mode with
      | `Warm -> [ go Engine.Warm ]
      | `Rebuild -> [ go Engine.Rebuild ]
      | `Token -> [ go Engine.Token ]
      | `Both -> [ go Engine.Warm; go Engine.Rebuild ]
      | `Packet -> assert false (* handled above *)
    in
    (* Uniform output is pinned by the PR-2 cram test; only the new
       discipline announces itself. *)
    if discipline <> Engine.Uniform then
      Printf.printf "discipline: %s\n" (Engine.discipline_name discipline);
    let fcell f r = Table.ffix 3 (f r) in
    let icell f r = string_of_int (f r) in
    Table.print
      ~header:("metric" :: List.map (fun r -> Engine.mode_name r.Engine.mode) reports)
      (List.map
         (fun (name, cell) -> name :: List.map cell reports)
         ([ ("horizon (slots)", icell (fun r -> r.Engine.horizon));
            ("arrivals", icell (fun r -> r.Engine.arrivals));
            ("allocated", icell (fun r -> r.Engine.allocated));
            ("completed", icell (fun r -> r.Engine.completed));
            ("cancelled", icell (fun r -> r.Engine.cancelled));
            ("expired", icell (fun r -> r.Engine.expired));
            ("left pending", icell (fun r -> r.Engine.left_pending));
            ("mean wait (slots)", fcell (fun r -> r.Engine.mean_wait));
            ("max wait (slots)", icell (fun r -> r.Engine.max_wait));
            ("throughput (tasks/slot)", fcell (fun r -> r.Engine.throughput));
            ("resource utilization", (fun r -> Table.fpct r.Engine.utilization));
            ("scheduling cycles", icell (fun r -> r.Engine.cycles));
            ("cycles skipped clean", icell (fun r -> r.Engine.skipped_cycles));
            ("solver work (arcs)", icell (fun r -> r.Engine.solver_work)) ]
         (* Fault-free traces keep the PR-2 pinned table byte-for-byte;
            these rows appear only when the trace carries fault events. *)
         @
         if has_faults then
           [ ("faults applied", icell (fun r -> r.Engine.faults));
             ("repairs applied", icell (fun r -> r.Engine.repairs));
             ("victim circuits", icell (fun r -> r.Engine.victims));
             ("mean re-admission wait", fcell (fun r -> r.Engine.mean_readmission)) ]
         else []));
    (match reports with
    | [ w; rb ] when rb.Engine.solver_work > 0 ->
      Printf.printf "warm start saves %s of rebuild solver work\n"
        (Table.fpct
           (1. -. float_of_int w.Engine.solver_work
                  /. float_of_int rb.Engine.solver_work))
    | _ -> ())
    end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Serve a recorded or synthetic workload trace through the online \
             allocation engine")
    Term.(
      const run $ net_arg $ trace_arg $ export_arg $ mode_arg
      $ engine_opts_term $ arbiter_arg $ vq_depth_arg $ flits_arg ~default:4
      $ common_term)

(* --- serve -------------------------------------------------------------------- *)

(* Stream one connection's JSONL off a Unix domain socket. The socket
   file is created fresh and removed on exit; a single connection is
   accepted and served to completion, which keeps the subcommand
   scriptable (pipe a trace in, read the report out). *)
let with_unix_socket path k =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 1;
      Printf.eprintf "listening on %s\n%!" path;
      let conn, _ = Unix.accept sock in
      let ic = Unix.in_channel_of_descr conn in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> k ic))

let serve_cmd =
  let module Engine = Rsin_engine.Engine in
  let module Serve = Rsin_engine.Serve in
  let module Shard = Rsin_engine.Shard in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Stream the JSONL workload trace in $(docv) line at a time \
                (replay traces double as load-test drivers).")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"PATH"
          ~doc:"Create a Unix domain socket at $(docv), accept one \
                connection and stream JSONL trace events from it until the \
                client closes.")
  in
  let synthetic_arg =
    Arg.(
      value & flag
      & info [ "synthetic" ]
          ~doc:"Synthesize the workload from the shared workload flags \
                (--slots, --arrival, ...) instead of streaming one — the \
                scaling-bench driver.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Size of the domain pool serving the shards (default: the \
                machine's recommended domain count). The shard layout — and \
                with it the allocation trajectory — does not depend on it.")
  in
  let timing_arg =
    Arg.(
      value & flag
      & info [ "timing" ]
          ~doc:"Also report wall-clock time and events/second (off by \
                default so serve output stays reproducible).")
  in
  let checkpoint_every_arg =
    Arg.(
      value
      & opt (some pos_int_conv) None
      & info [ "checkpoint-every" ] ~docv:"SLOTS"
          ~doc:"Write a checkpoint (atomically, via a temp file and rename) \
                every $(docv) served slots; must be > 0. A checkpoint lands \
                on a slot boundary and captures the full serving state — \
                restarting from it with $(b,--restore) reproduces the \
                uninterrupted run exactly.")
  in
  let checkpoint_file_arg =
    Arg.(
      value
      & opt string "rsin.ckpt"
      & info [ "checkpoint-file" ] ~docv:"FILE"
          ~doc:"Where $(b,--checkpoint-every) writes (default rsin.ckpt).")
  in
  let restore_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "restore" ] ~docv:"FILE"
          ~doc:"Resume serving from the checkpoint in $(docv) instead of \
                starting fresh; the engine config travels inside the \
                checkpoint, and NET must be the topology it was taken on. \
                Feed the remaining trace (slots after the checkpoint).")
  in
  let run net domains trace_file listen synthetic timing checkpoint_every
      checkpoint_file restore_file (o : engine_opts) c =
    let cfg = engine_config ~mode:Engine.Warm o c in
    if Option.is_some trace_file && Option.is_some listen then begin
      Printf.eprintf "rsin: --trace and --listen are mutually exclusive\n";
      exit 1
    end;
    if synthetic && (Option.is_some trace_file || Option.is_some listen) then begin
      Printf.eprintf "rsin: --synthetic replaces --trace/--listen\n";
      exit 1
    end;
    if cfg.Engine.Config.faults <> None && not synthetic then begin
      Printf.eprintf
        "rsin: --faults needs --synthetic (streamed traces carry their \
         fault events inline)\n";
      exit 1
    end;
    let cycle_hook, event_hook = heartbeat_hooks ~label:"serve" cfg in
    let cycle_hook =
      (* The engines run on separate domains, but the heartbeat tallies
         are only read by the event hook, which fires on the routing
         domain after the barrier — no cycle of any shard is in flight
         then, so the plain counters are safe. *)
      Option.map (fun h -> fun ~shard:_ snapshot info -> h snapshot info) cycle_hook
    in
    (* Periodic checkpoints piggyback on the per-slot event hook: the
       buffered slot is already flushed there, so Serve.snapshot is safe
       and lands on a slot boundary. Written atomically (temp + rename)
       so a crash mid-write never corrupts the previous checkpoint. *)
    let instance = ref None in
    let write_checkpoint t =
      let doc = Json.to_string (Serve.snapshot t) in
      let tmp = checkpoint_file ^ ".tmp" in
      Out_channel.with_open_text tmp (fun oc ->
          Out_channel.output_string oc doc;
          Out_channel.output_char oc '\n');
      Sys.rename tmp checkpoint_file
    in
    let event_hook =
      match checkpoint_every with
      | None -> event_hook
      | Some period ->
        let written = ref 0 in
        Some
          (fun ~events ~time ->
            (match event_hook with
             | Some h -> h ~events ~time
             | None -> ());
            if time >= 0 && time / period > !written then begin
              written := time / period;
              match !instance with
              | Some t ->
                write_checkpoint t;
                Printf.eprintf "checkpoint: slot %d -> %s\n%!" time
                  checkpoint_file
              | None -> ()
            end)
    in
    let t =
      match restore_file with
      | None ->
        (match Serve.create ~config:cfg ?domains ?cycle_hook ?event_hook net with
         | Ok t -> t
         | Error msg ->
           Printf.eprintf "rsin: %s\n" msg;
           exit 1)
      | Some file ->
        let doc =
          try In_channel.with_open_text file In_channel.input_all
          with Sys_error msg ->
            Printf.eprintf "rsin: cannot read checkpoint: %s\n" msg;
            exit 1
        in
        (match Json.parse doc with
         | Error msg ->
           Printf.eprintf "rsin: cannot read checkpoint %s: %s\n" file msg;
           exit 1
         | Ok j ->
           (match Serve.restore ?domains ?cycle_hook ?event_hook net j with
            | Ok t ->
              Printf.eprintf "restored from %s\n%!" file;
              t
            | Error msg ->
              Printf.eprintf "rsin: cannot restore %s: %s\n" file msg;
              exit 1))
    in
    instance := Some t;
    Printf.printf "serving %s: %d shard(s) over %d domain(s)\n"
      (Network.name net)
      (Shard.n_shards (Serve.shard t))
      (Serve.n_domains t);
    (* Robustness contract: hostile input never takes the server down.
       A malformed line or an event the router rejects (out-of-range
       processor, decreasing slot, duplicate id) is reported with its
       position and dropped; serving continues. *)
    let stream_errors = ref 0 in
    let feed ev =
      try Serve.feed t ev
      with Invalid_argument msg ->
        incr stream_errors;
        Printf.eprintf "rsin: event dropped: %s\n%!" msg
    in
    let feed_channel ic =
      Workload.fold_trace_channel_lenient ic
        ~on_error:(fun { Workload.line; message } ->
          incr stream_errors;
          Printf.eprintf "rsin: trace line %d: %s (line dropped)\n%!" line
            message)
        ~init:() ~f:(fun () ev -> feed ev)
    in
    (if synthetic then begin
       let trace = engine_trace o net c in
       let trace = engine_inject_faults cfg net trace c in
       List.iter feed (Workload.sort_trace trace)
     end
     else
       match (trace_file, listen) with
       | Some file, None ->
         (try In_channel.with_open_text file feed_channel
          with Sys_error msg ->
            Printf.eprintf "rsin: cannot read trace: %s\n" msg;
            exit 1)
       | None, Some path -> with_unix_socket path feed_channel
       | None, None | Some _, Some _ -> feed_channel stdin);
    Serve.drain t;
    let r = Serve.report t in
    Table.print
      ~header:[ "metric"; "serve" ]
      ([ ("events", string_of_int r.Serve.events);
         ("borrowed", string_of_int r.Serve.borrows);
         ("starved", string_of_int r.Serve.starved);
         ("horizon (slots)", string_of_int r.Serve.horizon);
         ("arrivals", string_of_int r.Serve.arrivals);
         ("allocated", string_of_int r.Serve.allocated);
         ("completed", string_of_int r.Serve.completed);
         ("cancelled", string_of_int r.Serve.cancelled);
         ("expired", string_of_int r.Serve.expired);
         ("left pending", string_of_int r.Serve.left_pending);
         ("scheduling cycles", string_of_int r.Serve.cycles);
         ("cycles skipped clean", string_of_int r.Serve.skipped_cycles);
         ("solver work (arcs)", string_of_int r.Serve.solver_work) ]
       @ (if r.Serve.faults + r.Serve.repairs > 0 then
            [ ("faults applied", string_of_int r.Serve.faults);
              ("repairs applied", string_of_int r.Serve.repairs);
              ("victim circuits", string_of_int r.Serve.victims) ]
          else [])
       @ (if o.eo_guard || restore_file <> None then
            [ ("shed (admission)", string_of_int r.Serve.shed);
              ("given up (budget)", string_of_int r.Serve.given_up);
              ("backoff retries", string_of_int r.Serve.retries);
              ("quarantines", string_of_int r.Serve.quarantines) ]
          else [])
       @ (if !stream_errors > 0 then
            [ ("stream errors dropped", string_of_int !stream_errors) ]
          else [])
       |> List.map (fun (a, b) -> [ a; b ]));
    if timing then
      Printf.printf "wall %.1f ms, %.0f events/s\n"
        (r.Serve.wall_us /. 1000.)
        (Serve.events_per_sec r)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a live JSONL event stream (stdin, file or Unix socket) \
             through the sharded multicore engine: one warm engine per \
             network component, spread over an OCaml domain pool, with \
             cross-shard borrowing when a shard's resource pool is \
             exhausted. Malformed lines and rejected events are dropped \
             with a positioned error instead of taking the server down; \
             $(b,--guard) adds overload and fault hardening, and \
             $(b,--checkpoint-every)/$(b,--restore) give crash recovery.")
    Term.(
      const run $ net_arg $ domains_arg $ trace_arg $ listen_arg
      $ synthetic_arg $ timing_arg $ checkpoint_every_arg
      $ checkpoint_file_arg $ restore_arg $ engine_opts_term $ common_term)

(* --- metrics ------------------------------------------------------------------ *)

let metrics_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the registry as one JSON object (alias for \
                $(b,--format json)).")
  in
  let format_arg =
    let fmt_conv =
      Arg.enum [ ("table", `Table); ("json", `Json); ("prom", `Prom) ]
    in
    Arg.(
      value & opt fmt_conv `Table
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,table) (human-readable), $(b,json) (one \
                JSON object) or $(b,prom) (Prometheus 0.0.4 text \
                exposition, histograms as summaries with p50/p95/p99 \
                quantile labels).")
  in
  let run net requests free pre json format c =
    let rng = Prng.create c.seed in
    if pre > 0 then ignore (Workload.preoccupy rng net ~circuits:pre);
    let requests, free = snapshot rng net requests free in
    let obs =
      match c.trace_out with None -> Obs.create () | Some _ -> Obs.recording ()
    in
    let opt = schedule_t1 ~obs c net ~requests ~free in
    let dist = Token_sim.run ~obs net ~requests ~free in
    let format = if json then `Json else format in
    (match format with
    | `Json -> print_endline (Metrics.to_json obs.Obs.metrics)
    | `Prom -> print_string (Metrics.to_prometheus obs.Obs.metrics)
    | `Table ->
      Printf.printf "requests: %s\nfree:     %s\n"
        (String.concat "," (List.map string_of_int requests))
        (String.concat "," (List.map string_of_int free));
      Printf.printf
        "optimal allocated %d/%d; distributed allocated %d/%d in %d clock \
         periods\n"
        opt.Rsin_core.Transform1.allocated (List.length requests)
        dist.Token_sim.allocated dist.Token_sim.requested
        dist.Token_sim.total_clocks;
      Table.print
        ~header:[ "metric"; "kind"; "value" ]
        (Metrics.to_rows obs.Obs.metrics));
    match c.trace_out with
    | Some file ->
      (try Trace.write_file obs.Obs.trace ~format:c.trace_format file
       with Sys_error msg ->
         Printf.eprintf "rsin: cannot write trace: %s\n" msg;
         exit 1);
      Printf.printf "trace: %d event(s) -> %s\n"
        (Trace.event_count obs.Obs.trace) file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Schedule a snapshot with both the centralized and the \
             distributed scheduler and print the metrics registry")
    Term.(
      const run $ net_arg $ requests_arg $ free_arg $ pre_arg $ json_arg
      $ format_arg $ common_term)

(* --- perf --------------------------------------------------------------------- *)

(* The regression gate over the structured bench reports: compares fresh
   BENCH_*.json files (written by `dune exec bench/main.exe`) against
   the committed baselines and fails --check runs on any metric that
   regressed beyond its kind's tolerance. *)

let perf_status_name = function
  | Bench_report.Same -> "same"
  | Bench_report.Regression -> "REGRESSION"
  | Bench_report.Improvement -> "improvement"
  | Bench_report.Only_baseline -> "only in baseline"
  | Bench_report.Only_fresh -> "only in fresh run"

let perf_self_test ~time_tolerance ~count_tolerance =
  (* An artificial 3x slowdown (and a count drift beyond 1%) must be
     flagged; an identical re-run must diff clean; and the report must
     survive a JSON round-trip. *)
  let env = [ ("ocaml", Sys.ocaml_version) ] in
  let mk factor =
    let r = Bench_report.create ~env "selftest" in
    let case = Bench_report.case r "case" in
    Bench_report.record_samples case ~name:"wall_us" ~kind:Bench_report.Time
      ~unit_:"us"
      (Array.init 20 (fun i -> (100. +. float_of_int i) *. factor));
    Bench_report.record_count case ~name:"solver_work" ~unit_:"arcs"
      (1000. *. factor);
    r
  in
  let failures = ref 0 in
  let expect what ok =
    Printf.printf "  %-46s %s\n" what (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  let baseline = mk 1.0 in
  let clean =
    Bench_report.regressions
      (Bench_report.diff ~time_tolerance ~count_tolerance ~baseline (mk 1.0))
  in
  expect "identical run diffs clean" (clean = []);
  let slow =
    Bench_report.regressions
      (Bench_report.diff ~time_tolerance ~count_tolerance ~baseline (mk 3.0))
  in
  expect "3x slowdown flags wall_us"
    (List.exists
       (fun d -> d.Bench_report.d_metric = "wall_us")
       slow);
  expect "3x count drift flags solver_work"
    (List.exists
       (fun d -> d.Bench_report.d_metric = "solver_work")
       slow);
  let tmp = Filename.temp_file "rsin_perf" "" in
  Sys.remove tmp;
  let dir = tmp in
  Unix.mkdir dir 0o755;
  let path = Bench_report.write ~dir baseline in
  let round =
    match Bench_report.read_file path with
    | Ok r -> Bench_report.equal r baseline
    | Error _ -> false
  in
  Sys.remove path;
  Unix.rmdir dir;
  expect "JSON round-trip preserves the report" round;
  if !failures = 0 then begin
    print_endline "perf self-test passed";
    0
  end
  else begin
    Printf.printf "perf self-test: %d failure(s)\n" !failures;
    1
  end

let perf_cmd =
  let baseline_dir_arg =
    Arg.(
      value
      & opt string "bench/baselines"
      & info [ "baseline-dir" ] ~docv:"DIR"
          ~doc:"Directory holding the committed baseline BENCH_*.json files.")
  in
  let fresh_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fresh-dir" ] ~docv:"DIR"
          ~doc:"Directory holding the freshly generated BENCH_*.json files \
                (default: \\$RSIN_BENCH_DIR or the current directory).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Exit non-zero when any metric regressed beyond its \
                tolerance (the CI gate).")
  in
  let self_test_arg =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:"Run the comparator against synthetic reports (an injected \
                3x slowdown must be detected) instead of reading files.")
  in
  let time_tol_arg =
    Arg.(
      value & opt float 2.0
      & info [ "time-tolerance" ] ~docv:"X"
          ~doc:"A time or allocation metric regresses when fresh > $(docv) \
                * baseline (mean). Wide by default: CI machines vary.")
  in
  let count_tol_arg =
    Arg.(
      value & opt float 1.01
      & info [ "count-tolerance" ] ~docv:"X"
          ~doc:"A deterministic count metric (solver work records, clock \
                periods) regresses when fresh > $(docv) * baseline.")
  in
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCH"
          ~doc:"Bench names to compare (default: every BENCH_*.json present \
                in the fresh directory).")
  in
  let bench_files dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then []
    else
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 11
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort compare
  in
  let bench_name_of_file f = Filename.chop_suffix (String.sub f 6 (String.length f - 6)) ".json" in
  let run baseline_dir fresh_dir check self_test time_tolerance
      count_tolerance names =
    if self_test then exit (perf_self_test ~time_tolerance ~count_tolerance);
    let fresh_dir =
      match fresh_dir with
      | Some d -> d
      | None -> Option.value (Sys.getenv_opt "RSIN_BENCH_DIR") ~default:"."
    in
    let files = bench_files fresh_dir in
    let files =
      if names = [] then files
      else begin
        List.iter
          (fun n ->
            if not (List.mem (Printf.sprintf "BENCH_%s.json" n) files) then begin
              Printf.eprintf "rsin: no BENCH_%s.json in %s\n" n fresh_dir;
              exit 1
            end)
          names;
        List.filter (fun f -> List.mem (bench_name_of_file f) names) files
      end
    in
    if files = [] then begin
      Printf.eprintf
        "rsin: no BENCH_*.json files in %s (run the benches first)\n" fresh_dir;
      exit 1
    end;
    let total_reg = ref 0 and total_imp = ref 0 and total_same = ref 0 in
    let skipped = ref 0 in
    List.iter
      (fun file ->
        let name = bench_name_of_file file in
        let bpath = Filename.concat baseline_dir file in
        if not (Sys.file_exists bpath) then begin
          Printf.printf "%-16s no baseline (new bench? commit %s)\n" name bpath;
          incr skipped
        end
        else
          let read what path =
            match Bench_report.read_file path with
            | Ok r -> r
            | Error msg ->
              Printf.eprintf "rsin: cannot read %s %s: %s\n" what path msg;
              exit 1
          in
          let baseline = read "baseline" bpath in
          let fresh = read "fresh report" (Filename.concat fresh_dir file) in
          let deltas =
            try
              Bench_report.diff ~time_tolerance ~count_tolerance ~baseline
                fresh
            with Invalid_argument msg ->
              Printf.eprintf "rsin: %s\n" msg;
              exit 1
          in
          let by_status s =
            List.filter (fun d -> d.Bench_report.d_status = s) deltas
          in
          let regs = by_status Bench_report.Regression in
          let imps = by_status Bench_report.Improvement in
          let sames = by_status Bench_report.Same in
          total_reg := !total_reg + List.length regs;
          total_imp := !total_imp + List.length imps;
          total_same := !total_same + List.length sames;
          Printf.printf "%-16s %d metric(s): %d same, %d improved, %d regressed\n"
            name (List.length deltas) (List.length sames) (List.length imps)
            (List.length regs);
          List.iter
            (fun d ->
              Printf.printf "  %-12s %s / %s: %.4g -> %.4g (%.2fx)\n"
                (perf_status_name d.Bench_report.d_status)
                d.Bench_report.d_case d.Bench_report.d_metric
                d.Bench_report.base d.Bench_report.fresh d.Bench_report.ratio)
            (regs @ imps))
      files;
    Printf.printf
      "total: %d same, %d improved, %d regressed%s\n"
      !total_same !total_imp !total_reg
      (if !skipped > 0 then Printf.sprintf ", %d without baseline" !skipped
       else "");
    if check && !total_reg > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Compare fresh BENCH_*.json bench reports against committed \
             baselines and flag metric regressions")
    Term.(
      const run $ baseline_dir_arg $ fresh_dir_arg $ check_arg $ self_test_arg
      $ time_tol_arg $ count_tol_arg $ names_arg)

(* --- props ------------------------------------------------------------------- *)

let props_cmd =
  let run net =
    Format.printf "%a@." Network.pp_summary net;
    let module P = Rsin_topology.Properties in
    Table.print
      ~header:[ "metric"; "value" ]
      [
        [ "path length (links)"; string_of_int (P.path_length net) ];
        [ "paths per pair (mean)"; Table.ffix 2 (P.path_diversity net) ];
        [ "paths per pair (min)"; string_of_int (P.min_path_diversity net) ];
        [ "bisection flow"; string_of_int (P.bisection_flow net) ];
      ]
  in
  Cmd.v
    (Cmd.info "props" ~doc:"Structural metrics of a network")
    Term.(const run $ net_arg)

(* --- perm -------------------------------------------------------------------- *)

let perm_cmd =
  let perm_arg =
    Arg.(
      value
      & opt (some int_list_conv) None
      & info [ "perm" ] ~docv:"R,R,..."
          ~doc:"Target resource for each processor in order (default: a \
                random permutation).")
  in
  let run n perm seed =
    let net = Rsin_topology.Builders.benes n in
    let perm =
      match perm with
      | Some l ->
        if List.length l <> n then failwith "permutation length must equal N";
        Array.of_list l
      | None ->
        let a = Array.init n Fun.id in
        Prng.shuffle (Prng.create seed) a;
        a
    in
    let circuits = Rsin_topology.Permutation.route net perm in
    List.iteri
      (fun p links ->
        ignore (Network.establish net links);
        Printf.printf "p%-3d -> r%-3d via %d links\n" p perm.(p)
          (List.length links))
      circuits;
    Printf.printf "all %d circuits established link-disjointly on %s\n" n
      (Network.name net)
  in
  let n_arg =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Port count (power of two); a Benes network \
                                of that size is generated.")
  in
  Cmd.v
    (Cmd.info "perm"
       ~doc:"Route a full permutation on a Benes network (looping algorithm)")
    Term.(const run $ n_arg $ perm_arg $ seed_arg)

(* --- gates -------------------------------------------------------------------- *)

let gates_cmd =
  let run net requests free pre c =
    let rng = Prng.create c.seed in
    with_obs c.trace_out c.trace_format @@ fun _obs ->
    if pre > 0 then ignore (Workload.preoccupy rng net ~circuits:pre);
    let c = Rsin_gates.Mrsin_circuit.compile net in
    let st = Rsin_gates.Mrsin_circuit.stats c in
    Printf.printf
      "compiled netlist: %d inputs, %d flip-flops, %d gates, depth %d\n"
      st.Rsin_gates.Netlist.inputs st.Rsin_gates.Netlist.flip_flops
      st.Rsin_gates.Netlist.gates st.Rsin_gates.Netlist.depth;
    let requests, free = snapshot rng net requests free in
    let o = Rsin_gates.Mrsin_circuit.run c ~requests ~free in
    Printf.printf "allocated %d/%d in %d clocks:\n"
      o.Rsin_gates.Mrsin_circuit.allocated o.Rsin_gates.Mrsin_circuit.requested
      o.Rsin_gates.Mrsin_circuit.clocks;
    List.iter
      (fun (p, r) -> Printf.printf "  p%d -> r%d\n" p r)
      o.Rsin_gates.Mrsin_circuit.mapping
  in
  Cmd.v
    (Cmd.info "gates"
       ~doc:"Compile the network to a gate-level scheduler and run a snapshot")
    Term.(const run $ net_arg $ requests_arg $ free_arg $ pre_arg $ common_term)

(* --- saturate ---------------------------------------------------------------- *)

let saturate_cmd =
  let loads_arg =
    let loads_conv =
      Arg.conv
        ( (fun s ->
            let parts = String.split_on_char ',' (String.trim s) in
            let parsed = List.filter_map float_of_string_opt parts in
            if List.length parsed = List.length parts && parts <> [] then
              Ok parsed
            else Error (`Msg "expected a comma-separated list of loads")),
          fun fmt l ->
            Format.fprintf fmt "%s"
              (String.concat "," (List.map string_of_float l)) )
    in
    Arg.(
      value
      & opt loads_conv [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
      & info [ "loads" ] ~docv:"L,L,..."
          ~doc:"Offered loads to sweep (task arrival probability per \
                processor per slot, each in [0,1]; each task carries \
                $(b,--flits) flits).")
  in
  let slots_arg =
    Arg.(
      value & opt int 2000
      & info [ "slots" ] ~doc:"Measured slots per load point.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the curve as a JSON document to $(docv).")
  in
  let run net arbiter vq_depth flits loads slots json c =
    if slots < 1 then begin
      Printf.eprintf "rsin: --slots must be >= 1\n";
      exit 1
    end;
    if List.exists (fun l -> l < 0. || l > 1.) loads then begin
      Printf.eprintf "rsin: every load must be in [0, 1]\n";
      exit 1
    end;
    check_packet_args ~vq_depth ~flits;
    with_obs c.trace_out c.trace_format @@ fun obs ->
    let module Sweep = Rsin_packet.Sweep in
    let points =
      Sweep.saturation ?obs ?vq_depth ~flits
        ~arbiter:(Rsin_packet.Arbiter.get arbiter)
        (Prng.create c.seed) net ~slots ~loads
    in
    Printf.printf "saturation: net=%s arbiter=%s vq-depth=%s flits=%d slots=%d\n"
      (Network.name net) arbiter
      (match vq_depth with Some k -> string_of_int k | None -> "unbounded")
      flits slots;
    Table.print ~align:Sweep.point_align ~header:Sweep.point_header
      (List.map Sweep.point_row points);
    match json with
    | None -> ()
    | Some file ->
      let doc =
        Sweep.to_json
          ~meta:
            [ ("net", Rsin_util.Json.Str (Network.name net));
              ("arbiter", Rsin_util.Json.Str arbiter);
              ( "vq_depth",
                match vq_depth with
                | Some k -> Rsin_util.Json.Num (float_of_int k)
                | None -> Rsin_util.Json.Null );
              ("flits", Rsin_util.Json.Num (float_of_int flits));
              ("slots", Rsin_util.Json.Num (float_of_int slots));
              ("seed", Rsin_util.Json.Num (float_of_int c.seed)) ]
          points
      in
      (try
         let oc = open_out file in
         output_string oc (Rsin_util.Json.to_string doc);
         output_char oc '\n';
         close_out oc
       with Sys_error msg ->
         Printf.eprintf "rsin: cannot write JSON: %s\n" msg;
         exit 1);
      Printf.printf "json: %d point(s) -> %s\n" (List.length points) file
  in
  Cmd.v
    (Cmd.info "saturate"
       ~doc:"Sweep offered load on the buffered packet fabric and print the \
             saturation (throughput/latency) curve")
    Term.(
      const run $ net_arg $ arbiter_arg $ vq_depth_arg $ flits_arg ~default:1
      $ loads_arg $ slots_arg $ json_arg $ common_term)

(* --- show -------------------------------------------------------------------- *)

let show_cmd =
  let run net pre requests free seed =
    let rng = Prng.create seed in
    if pre > 0 then ignore (Workload.preoccupy rng net ~circuits:pre);
    (match (requests, free) with
    | Some requests, Some free ->
      let o =
        Scheduler.schedule net
          ~requests:(List.map Scheduler.request requests)
          ~resources:(List.map Scheduler.resource free)
      in
      ignore (Scheduler.commit net o)
    | _ -> ());
    Format.printf "%a@?" Network.pp_occupancy net
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Text map of link occupancy, optionally after scheduling a snapshot")
    Term.(const run $ net_arg $ pre_arg $ requests_arg $ free_arg $ seed_arg)

(* --- taskgraph ------------------------------------------------------------------ *)

let taskgraph_cmd =
  let tasks_arg = Arg.(value & opt int 60 & info [ "tasks" ] ~doc:"Task count.") in
  let types_arg = Arg.(value & opt int 3 & info [ "types" ] ~doc:"Resource types.") in
  let run net tasks types c =
    let module Taskgraph = Rsin_sim.Taskgraph in
    let seed = c.seed in
    let rng = Prng.create seed in
    with_obs c.trace_out c.trace_format @@ fun _obs ->
    let g =
      Taskgraph.random rng ~tasks ~types ~procs:(Network.n_procs net)
        ~edge_prob:0.25 ~mean_service:4.
    in
    Printf.printf "graph: %d tasks, critical path %d slots\n" (Taskgraph.size g)
      (Taskgraph.critical_path g);
    let pool = List.init (Network.n_res net) (fun r -> (r, r mod types)) in
    Table.print
      ~header:[ "policy"; "makespan"; "pool util"; "mean ready wait" ]
      (List.map
         (fun (name, policy) ->
           let r = Taskgraph.execute ~policy (Prng.create seed) net ~pool g in
           [ name;
             string_of_int r.Taskgraph.makespan;
             Table.fpct r.Taskgraph.resource_utilization;
             Table.ffix 2 r.Taskgraph.mean_ready_wait ])
         [ ("flow", Taskgraph.Flow_scheduler);
           ("priority flow", Taskgraph.Priority_flow);
           ("naive", Taskgraph.Naive_mapper) ])
  in
  Cmd.v
    (Cmd.info "taskgraph"
       ~doc:"Execute a random dependency DAG over the resource pool")
    Term.(const run $ net_arg $ tasks_arg $ types_arg $ common_term)

(* --- chaos -------------------------------------------------------------------- *)

let chaos_cmd =
  let module Chaos = Rsin_engine.Chaos in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Short soak — 300 storm slots per topology instead of 2500. \
                The CI smoke setting.")
  in
  let slots_arg =
    Arg.(
      value
      & opt (some pos_int_conv) None
      & info [ "slots" ] ~docv:"N"
          ~doc:"Storm slots per topology (overrides the default and \
                $(b,--quick)).")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the JSON chaos report (schema \
                rsin-chaos-report/v1, one entry per topology with its \
                throughput-retained figure) to $(docv); $(b,-) for stdout.")
  in
  let run quick slots report c =
    match Chaos.run ~quick ~seed:c.seed ?slots () with
    | Error msg ->
      Printf.eprintf "rsin: chaos: %s\n" msg;
      exit 1
    | Ok outcomes ->
      List.iter (fun o -> Format.printf "%a@." Chaos.pp_outcome o) outcomes;
      (match report with
       | None -> ()
       | Some "-" -> print_endline (Json.to_string (Chaos.report_json outcomes))
       | Some file ->
         Out_channel.with_open_text file (fun oc ->
             Out_channel.output_string oc
               (Json.to_string (Chaos.report_json outcomes));
             Out_channel.output_char oc '\n');
         Printf.printf "report -> %s\n" file);
      print_endline "chaos soak passed: every accounting check held"
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Chaos soak of the sharded serving engine: seeded fault storms \
             under an overloading guarded workload, a mid-trace kill with \
             checkpoint/restore (the resumed trajectory must be \
             byte-identical), corrupted JSONL streams through the lenient \
             parser, and a clocked-fault token soak — with the arrival \
             accounting invariant asserted after every flushed slot. Exits \
             nonzero on the first violation.")
    Term.(const run $ quick_arg $ slots_arg $ report_arg $ common_term)

let () =
  let doc = "resource sharing interconnection network toolkit" in
  let main =
    Cmd.group
      (Cmd.info "rsin" ~doc ~version:"1.0.0")
      [ info_cmd; dot_cmd; schedule_cmd; trace_cmd; blocking_cmd; simulate_cmd;
        replay_cmd; serve_cmd; saturate_cmd; metrics_cmd; perf_cmd; props_cmd;
        perm_cmd;
        gates_cmd; show_cmd; taskgraph_cmd; chaos_cmd ]
  in
  exit (Cmd.eval main)
