(* Tests for the rsin_util substrate: PRNG, heap, bitset, stats, DSU,
   vec and table rendering. *)

open Rsin_util

let check = Alcotest.check
let qtest name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* --- Prng ---------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check Alcotest.bool "different seeds differ" true (!same < 4)

let test_prng_split_independence () =
  let g = Prng.create 99 in
  let h = Prng.split g in
  let xs = List.init 32 (fun _ -> Prng.bits64 g) in
  let ys = List.init 32 (fun _ -> Prng.bits64 h) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let test_prng_split_deterministic () =
  (* Splitting is part of the reproducibility contract: equal parents
     must yield equal children, and the split must advance the parent
     the same way every time. *)
  let a = Prng.create 99 and b = Prng.create 99 in
  let ca = Prng.split a and cb = Prng.split b in
  for _ = 1 to 32 do
    check Alcotest.int64 "children agree" (Prng.bits64 ca) (Prng.bits64 cb);
    check Alcotest.int64 "parents agree after split" (Prng.bits64 a)
      (Prng.bits64 b)
  done

let test_prng_split_n () =
  let g = Prng.create 7 in
  let subs = Prng.split_n g 4 in
  check Alcotest.int "count" 4 (Array.length subs);
  (* All sub-streams pairwise distinct, and distinct from the parent. *)
  let streams =
    Array.to_list (Array.map (fun s -> List.init 16 (fun _ -> Prng.bits64 s)) subs)
    @ [ List.init 16 (fun _ -> Prng.bits64 g) ]
  in
  List.iteri
    (fun i xs ->
      List.iteri
        (fun j ys ->
          if i < j then
            check Alcotest.bool
              (Printf.sprintf "streams %d,%d differ" i j)
              true (xs <> ys))
        streams)
    streams;
  (* Consuming one sub-stream must not perturb another: derived streams
     are independent state. *)
  let h = Prng.create 7 in
  let subs' = Prng.split_n h 4 in
  ignore (Prng.bits64 subs'.(0));
  check Alcotest.int64 "sibling unaffected"
    (let g2 = Prng.create 7 in
     Prng.bits64 (Prng.split_n g2 4).(3))
    (Prng.bits64 subs'.(3));
  check Alcotest.int "split_n 0 is empty" 0 (Array.length (Prng.split_n h 0));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Prng.split_n: negative count") (fun () ->
      ignore (Prng.split_n h (-1)))

let test_prng_copy () =
  let g = Prng.create 5 in
  ignore (Prng.bits64 g);
  let h = Prng.copy g in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 g) (Prng.bits64 h)

let prng_int_range =
  qtest "Prng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let g = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Prng.int g n in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let test_prng_int_covers () =
  let g = Prng.create 7 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.int g 4) <- true
  done;
  check Alcotest.bool "all residues hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let g = Prng.create 11 in
  for _ = 1 to 1000 do
    let x = Prng.float g 3.5 in
    if x < 0. || x >= 3.5 then Alcotest.fail "float out of range"
  done

let test_prng_bernoulli_bias () =
  let g = Prng.create 13 in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "bernoulli(0.3) near 0.3" true (abs_float (p -. 0.3) < 0.02)

let test_prng_geometric_mean () =
  let g = Prng.create 17 in
  let acc = Stats.accum () in
  for _ = 1 to 20000 do
    Stats.observe acc (float_of_int (Prng.geometric g 0.25))
  done;
  (* mean of geometric (failures before success) = (1-p)/p = 3 *)
  check Alcotest.bool "geometric mean near 3" true
    (abs_float (Stats.mean acc -. 3.) < 0.15)

let test_prng_exponential_mean () =
  let g = Prng.create 19 in
  let acc = Stats.accum () in
  for _ = 1 to 20000 do
    Stats.observe acc (Prng.exponential g 2.0)
  done;
  check Alcotest.bool "exp(2) mean near 0.5" true
    (abs_float (Stats.mean acc -. 0.5) < 0.03)

let prng_shuffle_perm =
  qtest "shuffle is a permutation" ~count:200
    QCheck.(pair small_int (int_range 0 50))
    (fun (seed, n) ->
      let g = Prng.create seed in
      let a = Array.init n (fun i -> i) in
      Prng.shuffle g a;
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prng_sample_distinct =
  qtest "sample_without_replacement distinct and in range" ~count:200
    QCheck.(triple small_int (int_range 0 30) (int_range 0 30))
    (fun (seed, a, b) ->
      let k = min a b and n = max a b in
      let g = Prng.create seed in
      let s = Prng.sample_without_replacement g k n in
      let l = Array.to_list s in
      List.length (List.sort_uniq compare l) = k
      && List.for_all (fun x -> x >= 0 && x < n) l)

let test_prng_invalid_args () =
  let g = Prng.create 0 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0));
  Alcotest.check_raises "pick empty" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick g [||]))

(* --- Heap ---------------------------------------------------------------- *)

let heap_sorts =
  qtest "heap pops in sorted order" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (fun x -> Heap.add h x x) xs;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare xs)

let test_heap_basics () =
  let h = Heap.create ~cmp:compare in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  Heap.add h 5 "five";
  Heap.add h 1 "one";
  Heap.add h 3 "three";
  check Alcotest.int "length" 3 (Heap.length h);
  check Alcotest.(option (pair int string)) "peek" (Some (1, "one")) (Heap.peek_min h);
  check Alcotest.(option (pair int string)) "pop" (Some (1, "one")) (Heap.pop_min h);
  check Alcotest.int "length after pop" 2 (Heap.length h);
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h);
  check Alcotest.(option (pair int string)) "pop empty" None (Heap.pop_min h)

let test_heap_duplicates () =
  let h = Heap.create ~cmp:compare in
  List.iter (fun k -> Heap.add h k k) [ 2; 2; 1; 2; 1 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (k, _) ->
      out := k :: !out;
      drain ()
  in
  drain ();
  check Alcotest.(list int) "dups preserved" [ 2; 2; 2; 1; 1 ] !out

(* --- Bitset -------------------------------------------------------------- *)

let bitset_model =
  qtest "bitset agrees with a list model" ~count:300
    QCheck.(pair (int_range 1 100) (list (int_range 0 99)))
    (fun (n, ops) ->
      let b = Bitset.create n in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i x ->
          let x = x mod n in
          if i mod 3 = 2 then begin
            Bitset.remove b x;
            Hashtbl.remove model x
          end
          else begin
            Bitset.add b x;
            Hashtbl.replace model x ()
          end)
        ops;
      Bitset.cardinal b = Hashtbl.length model
      && List.for_all (fun x -> Hashtbl.mem model x) (Bitset.to_list b))

let test_bitset_basics () =
  let b = Bitset.create 20 in
  check Alcotest.int "capacity" 20 (Bitset.capacity b);
  Bitset.add b 0;
  Bitset.add b 19;
  Bitset.add b 7;
  check Alcotest.bool "mem 19" true (Bitset.mem b 19);
  check Alcotest.bool "not mem 8" false (Bitset.mem b 8);
  check Alcotest.(list int) "to_list sorted" [ 0; 7; 19 ] (Bitset.to_list b);
  let c = Bitset.copy b in
  Bitset.remove b 7;
  check Alcotest.bool "copy unaffected" true (Bitset.mem c 7);
  Bitset.union_into b c;
  check Alcotest.bool "union restores" true (Bitset.mem b 7);
  check Alcotest.bool "equal" true (Bitset.equal b c);
  Bitset.clear b;
  check Alcotest.int "cleared" 0 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 4 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add b 4)

(* --- Stats --------------------------------------------------------------- *)

let test_stats_known () =
  let a = Stats.accum () in
  List.iter (Stats.observe a) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean a);
  check (Alcotest.float 1e-9) "variance" (32. /. 7.) (Stats.variance a);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.min_obs a);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.max_obs a);
  check Alcotest.int "count" 8 (Stats.count a)

let test_stats_empty () =
  let a = Stats.accum () in
  check Alcotest.bool "mean nan" true (Float.is_nan (Stats.mean a));
  check Alcotest.bool "variance nan" true (Float.is_nan (Stats.variance a))

let stats_welford_matches_naive =
  qtest "Welford variance matches two-pass" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let a = Stats.accum () in
      List.iter (Stats.observe a) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
      in
      let got = Stats.variance a in
      abs_float (got -. var) <= 1e-6 *. (1. +. abs_float var))

let test_wilson_interval () =
  let lo, hi = Stats.proportion_ci95 ~successes:50 ~trials:100 in
  check Alcotest.bool "contains p-hat" true (lo < 0.5 && hi > 0.5);
  check Alcotest.bool "reasonable width" true (hi -. lo < 0.25);
  let lo0, _ = Stats.proportion_ci95 ~successes:0 ~trials:10 in
  check (Alcotest.float 1e-9) "zero successes -> lo 0" 0.0 lo0;
  let _, hi1 = Stats.proportion_ci95 ~successes:10 ~trials:10 in
  check Alcotest.bool "all successes -> hi 1" true (hi1 <= 1.0)

let test_histogram () =
  let h = Stats.histogram ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Stats.hist_observe h) [ 0.5; 1.5; 1.6; 9.9; 100.; -5. ];
  let counts = Stats.hist_counts h in
  check Alcotest.int "bin 0 (incl clamped low)" 2 counts.(0);
  check Alcotest.int "bin 1" 2 counts.(1);
  check Alcotest.int "bin 9 (incl clamped high)" 2 counts.(9);
  check Alcotest.int "total" 6 (Stats.hist_total h);
  let q = Stats.hist_quantile h 0.5 in
  check Alcotest.bool "median in range" true (q >= 0. && q <= 10.)

let test_hist_quantile_edges () =
  let empty = Stats.histogram ~lo:0. ~hi:1. ~bins:4 in
  check Alcotest.bool "empty histogram -> nan" true
    (Float.is_nan (Stats.hist_quantile empty 0.5));
  let h = Stats.histogram ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Stats.hist_observe h) [ 1.5; 4.5; 8.5 ];
  check (Alcotest.float 1e-9) "q=0 -> first bin midpoint" 0.5
    (Stats.hist_quantile h 0.);
  check (Alcotest.float 1e-9) "q=1 -> last occupied bin midpoint" 8.5
    (Stats.hist_quantile h 1.);
  check (Alcotest.float 1e-9) "q<0 clamps to q=0" (Stats.hist_quantile h 0.)
    (Stats.hist_quantile h (-3.));
  check (Alcotest.float 1e-9) "q>1 clamps to q=1" (Stats.hist_quantile h 1.)
    (Stats.hist_quantile h 7.);
  (* a single-bin histogram answers its midpoint for every quantile *)
  let one = Stats.histogram ~lo:0. ~hi:2. ~bins:1 in
  Stats.hist_observe one 0.3;
  List.iter
    (fun q ->
      check (Alcotest.float 1e-9) "single bin -> midpoint" 1.0
        (Stats.hist_quantile one q))
    [ 0.; 0.25; 0.5; 1. ]

(* --- Dsu ----------------------------------------------------------------- *)

let test_dsu () =
  let d = Dsu.create 6 in
  check Alcotest.int "components" 6 (Dsu.components d);
  check Alcotest.bool "union 0 1" true (Dsu.union d 0 1);
  check Alcotest.bool "union 1 2" true (Dsu.union d 1 2);
  check Alcotest.bool "re-union" false (Dsu.union d 0 2);
  check Alcotest.bool "same" true (Dsu.same d 0 2);
  check Alcotest.bool "not same" false (Dsu.same d 0 5);
  check Alcotest.int "components after" 4 (Dsu.components d)

let dsu_transitivity =
  qtest "dsu connectivity is an equivalence" ~count:100
    QCheck.(list (pair (int_range 0 19) (int_range 0 19)))
    (fun edges ->
      let d = Dsu.create 20 in
      List.iter (fun (a, b) -> ignore (Dsu.union d a b)) edges;
      (* reference: BFS connectivity *)
      let adj = Array.make 20 [] in
      List.iter
        (fun (a, b) ->
          adj.(a) <- b :: adj.(a);
          adj.(b) <- a :: adj.(b))
        edges;
      let reach s =
        let seen = Array.make 20 false in
        let rec go v =
          if not seen.(v) then begin
            seen.(v) <- true;
            List.iter go adj.(v)
          end
        in
        go s;
        seen
      in
      let ok = ref true in
      for a = 0 to 19 do
        let r = reach a in
        for b = 0 to 19 do
          if Dsu.same d a b <> r.(b) then ok := false
        done
      done;
      !ok)

(* --- Vec ----------------------------------------------------------------- *)

let test_vec () =
  let v = Vec.create () in
  check Alcotest.int "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get" 81 (Vec.get v 9);
  Vec.set v 9 (-1);
  check Alcotest.int "set" (-1) (Vec.get v 9);
  let sum = ref 0 in
  Vec.iteri (fun _ x -> sum := !sum + x) v;
  check Alcotest.bool "iteri covers" true (!sum <> 0);
  let a = Vec.to_array v in
  check Alcotest.int "to_array length" 100 (Array.length a);
  let w = Vec.of_array [| 1; 2; 3 |] in
  check Alcotest.int "of_array" 3 (Vec.length w);
  Vec.clear w;
  check Alcotest.int "clear" 0 (Vec.length w);
  Alcotest.check_raises "bounds" (Invalid_argument "Vec: index out of range")
    (fun () -> ignore (Vec.get v 100))

(* --- Table --------------------------------------------------------------- *)

let test_table_render () =
  let s =
    Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim s) in
  check Alcotest.int "line count" 4 (List.length lines);
  (match lines with
  | header :: sep :: _ ->
    check Alcotest.bool "header first" true
      (String.length header >= String.length "name  value");
    check Alcotest.bool "separator dashes" true (String.contains sep '-')
  | _ -> Alcotest.fail "missing lines");
  check Alcotest.string "fpct" "2.13%" (Table.fpct 0.0213);
  check Alcotest.string "ffix" "3.14" (Table.ffix 2 3.14159)

let test_table_ragged_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ]; [ "1"; "2"; "3"; "4" ] ] in
  check Alcotest.bool "renders without exception" true (String.length s > 0)

(* --- Clock --------------------------------------------------------------- *)

let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Clock.now_ns () in
    check Alcotest.bool "never goes backwards" true (Int64.compare t !prev >= 0);
    prev := t
  done

let test_clock_elapsed () =
  let t0 = Clock.now_ns () in
  let x = ref 0 in
  for i = 1 to 100_000 do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x);
  let dt = Clock.elapsed_us ~since:t0 in
  check Alcotest.bool "elapsed is positive" true (dt > 0.);
  let r, us = Clock.time_us (fun () -> 42) in
  check Alcotest.int "time_us returns the result" 42 r;
  check Alcotest.bool "time_us measures >= 0" true (us >= 0.)

(* --- log-bucketed histogram and exact percentiles ------------------------ *)

let test_loghist_quantiles () =
  let h = Stats.loghist () in
  for i = 1 to 1000 do
    Stats.log_observe h (float_of_int i)
  done;
  check Alcotest.int "total" 1000 (Stats.log_total h);
  let close q expect =
    let v = Stats.log_quantile h q in
    check Alcotest.bool
      (Printf.sprintf "q=%.2f within 3%% of %g (got %g)" q expect v)
      true
      (Float.abs (v -. expect) /. expect < 0.03)
  in
  close 0.5 500.;
  close 0.95 950.;
  close 0.99 990.;
  (* clamped to exact observed extremes *)
  check Alcotest.bool "q=1 clamps to max" true (Stats.log_quantile h 1.0 <= 1000.);
  check Alcotest.bool "q=0 clamps to min" true (Stats.log_quantile h 0.0 >= 1.)

let test_loghist_edge_cases () =
  let h = Stats.loghist () in
  check Alcotest.bool "empty quantile is nan" true
    (Float.is_nan (Stats.log_quantile h 0.5));
  (* nonpositive observations land in a dedicated bucket reported as 0 *)
  Stats.log_observe h (-5.);
  Stats.log_observe h 0.;
  Stats.log_observe h 10.;
  check Alcotest.int "total counts nonpos" 3 (Stats.log_total h);
  check (Alcotest.float 1e-9) "low quantile is 0" 0. (Stats.log_quantile h 0.3)

let test_percentile () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  check (Alcotest.float 1e-9) "median" 3. (Stats.percentile xs 0.5);
  check (Alcotest.float 1e-9) "min" 1. (Stats.percentile xs 0.);
  check (Alcotest.float 1e-9) "max" 5. (Stats.percentile xs 1.);
  check (Alcotest.float 1e-9) "interpolated" 2. (Stats.percentile xs 0.25);
  check (Alcotest.float 1e-9) "between samples" 4.8 (Stats.percentile xs 0.95);
  check Alcotest.bool "input not reordered" true (xs = [| 5.; 1.; 3.; 2.; 4. |]);
  check Alcotest.bool "empty is nan" true (Float.is_nan (Stats.percentile [||] 0.5))

let loghist_brackets_exact =
  (* The sketch's quantile must stay within its guaranteed relative
     error (~gamma) of the exact sample percentile, for any sample. *)
  qtest "loghist tracks exact percentile"
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_range 0.001 1e6)) (float_range 0. 1.))
    (fun (xs, q) ->
      let h = Stats.loghist () in
      List.iter (Stats.log_observe h) xs;
      let approx = Stats.log_quantile h q in
      let exact = Stats.percentile (Array.of_list xs) q in
      (* Bucket midpoints are within 2.5% of any value in the bucket;
         rank rounding can shift by one sample, so compare against the
         sample range around the exact rank with a 6% slack. *)
      let lo = List.fold_left min infinity xs
      and hi = List.fold_left max neg_infinity xs in
      approx >= lo -. 1e-9 && approx <= hi +. 1e-9
      && (approx <= exact *. 1.06 +. 1e-9 || approx >= exact /. 1.06 -. 1e-9))

(* --- Json ---------------------------------------------------------------- *)

let test_json_parse_basics () =
  let ok s expect =
    match Json.parse s with
    | Ok v -> check Alcotest.bool (Printf.sprintf "parse %S" s) true (Json.equal v expect)
    | Error e -> Alcotest.fail (Printf.sprintf "parse %S failed: %s" s e)
  in
  ok "null" Json.Null;
  ok "true" (Json.Bool true);
  ok " -12.5e2 " (Json.Num (-1250.));
  ok {|"a\nbé"|} (Json.Str "a\nb\xc3\xa9");
  ok {|[1,2,[],{}]|}
    (Json.Arr [ Json.Num 1.; Json.Num 2.; Json.Arr []; Json.Obj [] ]);
  ok {|{"k":[true,null],"s":"x"}|}
    (Json.Obj
       [ ("k", Json.Arr [ Json.Bool true; Json.Null ]); ("s", Json.Str "x") ]);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "parse %S should fail" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "1 2"; "{\"a\" 1}"; "[01]" ]

let test_json_accessors () =
  let j =
    Result.get_ok (Json.parse {|{"n":3,"arr":[1,2],"s":"x","b":false}|})
  in
  check Alcotest.int "to_int" 3
    (Option.get Option.(bind (Json.member "n" j) Json.to_int));
  check Alcotest.int "list length" 2
    (List.length (Option.get Option.(bind (Json.member "arr" j) Json.to_list)));
  check Alcotest.string "to_str" "x"
    (Option.get Option.(bind (Json.member "s" j) Json.to_str));
  check Alcotest.bool "to_bool" false
    (Option.get Option.(bind (Json.member "b" j) Json.to_bool));
  check Alcotest.bool "absent member" true (Json.member "zzz" j = None)

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun f -> Json.Num f) (float_range (-1e9) 1e9);
        map (fun n -> Json.Num (float_of_int n)) int;
        map (fun s -> Json.Str s) (small_string ~gen:printable) ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [ (3, scalar);
          (1, map (fun l -> Json.Arr l) (list_size (0 -- 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs ->
                (* duplicate keys would round-trip ambiguously *)
                let seen = Hashtbl.create 8 in
                Json.Obj
                  (List.filter
                     (fun (k, _) ->
                       if Hashtbl.mem seen k then false
                       else (Hashtbl.add seen k (); true))
                     kvs))
              (list_size (0 -- 4)
                 (pair (small_string ~gen:printable) (value (depth - 1)))) ) ]
  in
  value 3

let json_roundtrip =
  qtest "json print/parse round-trip"
    (QCheck.make ~print:Json.to_string json_gen)
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> Json.equal j j'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng split" `Quick test_prng_split_independence;
    Alcotest.test_case "prng split deterministic" `Quick
      test_prng_split_deterministic;
    Alcotest.test_case "prng split_n" `Quick test_prng_split_n;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    prng_int_range;
    Alcotest.test_case "prng int coverage" `Quick test_prng_int_covers;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng bernoulli bias" `Quick test_prng_bernoulli_bias;
    Alcotest.test_case "prng geometric mean" `Quick test_prng_geometric_mean;
    Alcotest.test_case "prng exponential mean" `Quick test_prng_exponential_mean;
    prng_shuffle_perm;
    prng_sample_distinct;
    Alcotest.test_case "prng invalid args" `Quick test_prng_invalid_args;
    heap_sorts;
    Alcotest.test_case "heap basics" `Quick test_heap_basics;
    Alcotest.test_case "heap duplicates" `Quick test_heap_duplicates;
    bitset_model;
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "stats known values" `Quick test_stats_known;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    stats_welford_matches_naive;
    Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "hist_quantile edges" `Quick test_hist_quantile_edges;
    Alcotest.test_case "dsu basics" `Quick test_dsu;
    dsu_transitivity;
    Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "clock elapsed" `Quick test_clock_elapsed;
    Alcotest.test_case "loghist quantiles" `Quick test_loghist_quantiles;
    Alcotest.test_case "loghist edge cases" `Quick test_loghist_edge_cases;
    Alcotest.test_case "percentile" `Quick test_percentile;
    loghist_brackets_exact;
    Alcotest.test_case "json parse basics" `Quick test_json_parse_basics;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    json_roundtrip;
  ]
