(* Tests for the observability layer (Rsin_obs): the metrics registry,
   the tracer and its exporters, the no-op-on-None observer helpers, and
   the reconciliation guarantee — the registry counters are fed from the
   same refs as the legacy stats records, so the two views must agree. *)

open Rsin_obs
module Builders = Rsin_topology.Builders
module Dinic = Rsin_flow.Dinic
module Monitor = Rsin_core.Monitor
module Transform1 = Rsin_core.Transform1
module Token_sim = Rsin_distributed.Token_sim

let check = Alcotest.check

(* --- metrics registry ---------------------------------------------------- *)

let test_metrics_counters () =
  let t = Metrics.create () in
  let c = Metrics.counter t "a.count" in
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "counter value" 5 (Metrics.counter_value c);
  check Alcotest.int "get_counter" 5 (Metrics.get_counter t "a.count");
  check Alcotest.int "absent counter reads 0" 0 (Metrics.get_counter t "nope");
  (* the same name returns the same handle *)
  Metrics.incr (Metrics.counter t "a.count");
  check Alcotest.int "shared handle" 6 (Metrics.get_counter t "a.count")

let test_metrics_kinds () =
  let t = Metrics.create () in
  ignore (Metrics.counter t "x");
  Alcotest.check_raises "kind mismatch names both kinds"
    (Invalid_argument "Metrics: \"x\" is a counter, not the requested gauge")
    (fun () -> ignore (Metrics.gauge t "x"));
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument "Metrics: \"x\" is a counter, not the requested histogram")
    (fun () -> ignore (Metrics.histogram t "x"));
  let g = Metrics.gauge t "g" in
  Metrics.set g 2.5;
  let h = Metrics.histogram t "h" in
  Metrics.observe h 1.;
  Metrics.observe h 3.;
  match (Metrics.find t "g", Metrics.find t "h") with
  | ( Some (Metrics.Gauge v),
      Some (Metrics.Histogram { n; mean; lo; hi; p50; p95; p99 }) ) ->
    check (Alcotest.float 1e-9) "gauge" 2.5 v;
    check Alcotest.int "hist n" 2 n;
    check (Alcotest.float 1e-9) "hist mean" 2. mean;
    check (Alcotest.float 1e-9) "hist lo" 1. lo;
    check (Alcotest.float 1e-9) "hist hi" 3. hi;
    (* quantiles come from the log-bucketed sketch: ~2.5% relative
       error, clamped into [lo, hi] *)
    check (Alcotest.float 0.1) "hist p50" 1. p50;
    check (Alcotest.float 0.1) "hist p95" 3. p95;
    check (Alcotest.float 0.1) "hist p99" 3. p99
  | _ -> Alcotest.fail "wrong snapshot kinds"

let test_metrics_snapshot_sorted () =
  let t = Metrics.create () in
  List.iter (fun n -> ignore (Metrics.counter t n)) [ "b"; "c"; "a" ];
  check
    Alcotest.(list string)
    "sorted names" [ "a"; "b"; "c" ]
    (List.map fst (Metrics.snapshot t));
  Metrics.clear t;
  check Alcotest.int "cleared" 0 (List.length (Metrics.snapshot t))

let test_metrics_json () =
  let t = Metrics.create () in
  Metrics.add (Metrics.counter t "c") 7;
  Metrics.set (Metrics.gauge t "g") 0.5;
  check Alcotest.string "json object" "{\"c\":7,\"g\":0.5}" (Metrics.to_json t);
  (* an empty histogram reports nan mean, which must become null *)
  ignore (Metrics.histogram t "h");
  check Alcotest.bool "nan -> null" true
    (let json = Metrics.to_json t in
     let rec contains i =
       i + 4 <= String.length json
       && (String.sub json i 4 = "null" || contains (i + 1))
     in
     contains 0)

let test_metrics_prometheus () =
  let t = Metrics.create () in
  Metrics.add (Metrics.counter t "flow.dinic.runs") 3;
  Metrics.set (Metrics.gauge t "g") 0.5;
  let h = Metrics.histogram t "lat" in
  List.iter (Metrics.observe h) [ 1.; 2.; 4. ];
  ignore (Metrics.histogram t "empty");
  let s = Metrics.to_prometheus t in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  let has l = List.mem l lines in
  check Alcotest.bool "counter type line" true
    (has "# TYPE rsin_flow_dinic_runs counter");
  check Alcotest.bool "counter sample" true (has "rsin_flow_dinic_runs 3");
  check Alcotest.bool "gauge sample" true (has "rsin_g 0.5");
  check Alcotest.bool "summary type" true (has "# TYPE rsin_lat summary");
  check Alcotest.bool "summary count" true (has "rsin_lat_count 3");
  check Alcotest.bool "summary sum" true (has "rsin_lat_sum 7");
  check Alcotest.bool "quantile label present" true
    (List.exists
       (fun l ->
         String.length l > 20 && String.sub l 0 20 = "rsin_lat{quantile=\"0")
       lines);
  (* empty histograms export zero count and no quantile lines *)
  check Alcotest.bool "empty count" true (has "rsin_empty_count 0");
  check Alcotest.bool "empty has no quantiles" false
    (List.exists
       (fun l -> String.length l > 10 && String.sub l 0 10 = "rsin_empty{")
       lines)

(* --- tracer and exporters ------------------------------------------------ *)

let test_trace_null_records_nothing () =
  let t = Trace.null in
  check Alcotest.bool "disabled" false (Trace.enabled t);
  Trace.span_begin t "x" ~ts:0;
  Trace.instant t "y" ~ts:1;
  check Alcotest.int "no events" 0 (Trace.event_count t);
  check Alcotest.string "empty chrome export" "[\n]\n"
    (Trace.to_string t ~format:Trace.Chrome)

let test_trace_records_in_order () =
  let t = Trace.create () in
  Trace.span_begin t "phase" ~ts:0 ~args:[ ("k", Trace.Int 1) ];
  Trace.instant t "tick" ~ts:3 ~tid:2;
  Trace.span_end t "phase" ~ts:5;
  check Alcotest.int "three events" 3 (Trace.event_count t);
  match Trace.events t with
  | [ a; b; c ] ->
    check Alcotest.string "first name" "phase" a.Trace.name;
    check Alcotest.bool "first is begin" true (a.Trace.ph = Trace.Begin);
    check Alcotest.int "instant tid" 2 b.Trace.tid;
    check Alcotest.bool "last is end" true (c.Trace.ph = Trace.End);
    check Alcotest.int "last ts" 5 c.Trace.ts
  | _ -> Alcotest.fail "expected exactly three events"

let test_trace_chrome_format () =
  let t = Trace.create () in
  Trace.span_begin t "p" ~ts:0 ~args:[ ("n", Trace.Int 2) ];
  Trace.instant t "i" ~ts:1 ~args:[ ("s", Trace.Str "a\"b") ];
  Trace.span_end t "p" ~ts:2;
  let s = Trace.to_string t ~format:Trace.Chrome in
  check Alcotest.string "chrome array"
    "[\n\
     {\"name\":\"p\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"n\":2}},\n\
     {\"name\":\"i\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":{\"s\":\"a\\\"b\"}},\n\
     {\"name\":\"p\",\"ph\":\"E\",\"ts\":2,\"pid\":1,\"tid\":0}\n\
     ]\n"
    s;
  let jsonl = Trace.to_string t ~format:Trace.Jsonl in
  check Alcotest.int "jsonl one line per event" 3
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)))

let test_trace_format_of_string () =
  check Alcotest.bool "jsonl" true
    (Trace.format_of_string "jsonl" = Some Trace.Jsonl);
  check Alcotest.bool "chrome" true
    (Trace.format_of_string "chrome" = Some Trace.Chrome);
  check Alcotest.bool "unknown" true (Trace.format_of_string "xml" = None)

let test_trace_write_file () =
  let t = Trace.create () in
  Trace.instant t "e" ~ts:0;
  let path = Filename.temp_file "rsin_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_file t ~format:Trace.Chrome path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      check Alcotest.string "file contents" (Trace.to_string t ~format:Trace.Chrome) s)

(* The Chrome export of a real solver trace must be machine-parseable
   and structurally well-formed: valid JSON, every B eventually followed
   by a matching E with the same name on the same tid, and timestamps
   non-decreasing per tid. A single solver run keeps one clock per tid,
   so monotonicity holds (it would not across runs — each run resets its
   clock). *)
let test_trace_chrome_parses_and_nests () =
  let obs = Obs.recording () in
  let net = Builders.omega 8 in
  let tr =
    Transform1.build net ~requests:[ 0; 1; 2; 3 ] ~free:[ 4; 5; 6; 7 ]
  in
  let _ =
    Dinic.max_flow ~obs (Transform1.graph tr)
      ~source:(Transform1.source tr) ~sink:(Transform1.sink tr)
  in
  let s = Trace.to_string obs.Obs.trace ~format:Trace.Chrome in
  let module Json = Rsin_util.Json in
  match Json.parse s with
  | Error e -> Alcotest.fail ("chrome export is not valid JSON: " ^ e)
  | Ok j ->
    let events = Option.get (Json.to_list j) in
    check Alcotest.bool "trace is non-empty" true (events <> []);
    let field name ev = Json.member name ev in
    let str name ev = Option.get Option.(bind (field name ev) Json.to_str) in
    let int name ev = Option.get Option.(bind (field name ev) Json.to_int) in
    (* per-tid: stack of open span names, last timestamp *)
    let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
    let last_ts : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
    let get tbl mk tid =
      match Hashtbl.find_opt tbl tid with
      | Some v -> v
      | None ->
        let v = mk () in
        Hashtbl.replace tbl tid v;
        v
    in
    List.iter
      (fun ev ->
        let tid = int "tid" ev and ts = int "ts" ev in
        let prev = get last_ts (fun () -> ref min_int) tid in
        check Alcotest.bool
          (Printf.sprintf "ts monotone on tid %d" tid)
          true (ts >= !prev);
        prev := ts;
        let stack = get stacks (fun () -> ref []) tid in
        match str "ph" ev with
        | "B" -> stack := str "name" ev :: !stack
        | "E" -> (
          match !stack with
          | top :: rest ->
            check Alcotest.string "E matches innermost B" top (str "name" ev);
            stack := rest
          | [] -> Alcotest.fail "E without open B on its tid")
        | _ -> ())
      events;
    Hashtbl.iter
      (fun tid stack ->
        check Alcotest.int
          (Printf.sprintf "no unclosed spans on tid %d" tid)
          0
          (List.length !stack))
      stacks

(* --- observer helpers ---------------------------------------------------- *)

let test_obs_none_is_noop () =
  (* must not raise, must not observably do anything *)
  Obs.count None "c" 1;
  Obs.observe None "h" 1.;
  Obs.set_gauge None "g" 1.;
  Obs.span_begin None "s" ~ts:0;
  Obs.span_end None "s" ~ts:1;
  Obs.instant None "i" ~ts:2;
  check Alcotest.bool "not tracing" false (Obs.tracing None)

let test_obs_tracing_guard () =
  let metrics_only = Obs.create () in
  check Alcotest.bool "null sink is not tracing" false
    (Obs.tracing (Some metrics_only));
  let recording = Obs.recording () in
  check Alcotest.bool "recording is tracing" true (Obs.tracing (Some recording));
  Obs.count (Some metrics_only) "c" 3;
  check Alcotest.int "counted" 3
    (Metrics.get_counter metrics_only.Obs.metrics "c");
  Obs.instant (Some recording) "i" ~ts:0;
  check Alcotest.int "recorded" 1 (Trace.event_count recording.Obs.trace)

(* --- reconciliation with the legacy stats records ------------------------ *)

(* Dinic's returned stats record and the flow.dinic.* counters are fed
   from the same refs; on a fresh observer they must be equal. *)
let test_dinic_stats_reconcile () =
  let obs = Obs.recording () in
  let net = Builders.omega 8 in
  let requests = [ 0; 1; 2; 3 ] and free = [ 4; 5; 6; 7 ] in
  let tr = Transform1.build net ~requests ~free in
  let g = Transform1.graph tr in
  let _flow, stats =
    Dinic.max_flow ~obs g ~source:(Transform1.source tr)
      ~sink:(Transform1.sink tr)
  in
  let m = obs.Obs.metrics in
  check Alcotest.int "runs" 1 (Metrics.get_counter m "flow.dinic.runs");
  check Alcotest.int "phases" stats.Dinic.phases
    (Metrics.get_counter m "flow.dinic.phases");
  check Alcotest.int "augmentations" stats.Dinic.augmentations
    (Metrics.get_counter m "flow.dinic.augmentations");
  check Alcotest.int "arcs_scanned" stats.Dinic.arcs_scanned
    (Metrics.get_counter m "flow.dinic.arcs_scanned");
  (* the trace carries one begin and one end per phase *)
  let begins =
    List.length
      (List.filter
         (fun e -> e.Trace.name = "dinic.phase" && e.Trace.ph = Trace.Begin)
         (Trace.events obs.Obs.trace))
  in
  check Alcotest.int "one span per phase" stats.Dinic.phases begins

let test_token_sim_clocks_reconcile () =
  let obs = Obs.recording () in
  let net = Builders.omega_paper 8 in
  let rep = Token_sim.run ~obs net ~requests:[ 0; 2; 4 ] ~free:[ 1; 3; 5 ] in
  let m = obs.Obs.metrics in
  check Alcotest.int "request clocks" rep.Token_sim.clocks.Token_sim.request_clocks
    (Metrics.get_counter m "token_sim.request_clocks");
  check Alcotest.int "resource clocks"
    rep.Token_sim.clocks.Token_sim.resource_clocks
    (Metrics.get_counter m "token_sim.resource_clocks");
  check Alcotest.int "registration clocks"
    rep.Token_sim.clocks.Token_sim.registration_clocks
    (Metrics.get_counter m "token_sim.registration_clocks");
  check Alcotest.int "total clocks" rep.Token_sim.total_clocks
    (Metrics.get_counter m "token_sim.total_clocks");
  check Alcotest.int "allocated" rep.Token_sim.allocated
    (Metrics.get_counter m "token_sim.allocated");
  (* one token.bus instant per clock period, timestamps 0..clocks-1 *)
  let bus_events =
    List.filter (fun e -> e.Trace.name = "token.bus")
      (Trace.events obs.Obs.trace)
  in
  check Alcotest.int "one instant per clock" rep.Token_sim.total_clocks
    (List.length bus_events);
  List.iteri
    (fun i e -> check Alcotest.int "bus ts" i e.Trace.ts)
    bus_events

let test_monitor_instructions_reconcile () =
  let obs = Obs.recording () in
  let net = Builders.omega 8 in
  let mon = Monitor.create ~obs net in
  List.iter (Monitor.submit mon) [ 0; 1; 2 ];
  List.iter (Monitor.resource_ready mon) [ 3; 4; 5 ];
  let r1 = Monitor.run_cycle mon in
  List.iter (Monitor.submit mon) [ 6; 7 ];
  List.iter (Monitor.resource_ready mon) [ 0; 1 ];
  let r2 = Monitor.run_cycle mon in
  let m = obs.Obs.metrics in
  check Alcotest.int "instructions summed"
    (r1.Monitor.instructions + r2.Monitor.instructions)
    (Metrics.get_counter m "monitor.instructions");
  check Alcotest.int "instructions = total_instructions"
    (Monitor.total_instructions mon)
    (Metrics.get_counter m "monitor.instructions");
  check Alcotest.int "cycles" 2 (Metrics.get_counter m "monitor.cycles");
  check Alcotest.int "allocated"
    (List.length r1.Monitor.allocated + List.length r2.Monitor.allocated)
    (Metrics.get_counter m "monitor.allocated");
  (* spans nest: every monitor.cycle Begin has a matching End *)
  let spans =
    List.filter (fun e -> e.Trace.name = "monitor.cycle")
      (Trace.events obs.Obs.trace)
  in
  check Alcotest.int "begin/end pairs" 4 (List.length spans)

let suite =
  [
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics kinds" `Quick test_metrics_kinds;
    Alcotest.test_case "metrics snapshot sorted" `Quick
      test_metrics_snapshot_sorted;
    Alcotest.test_case "metrics json" `Quick test_metrics_json;
    Alcotest.test_case "metrics prometheus" `Quick test_metrics_prometheus;
    Alcotest.test_case "trace chrome parses and nests" `Quick
      test_trace_chrome_parses_and_nests;
    Alcotest.test_case "trace null sink" `Quick test_trace_null_records_nothing;
    Alcotest.test_case "trace event order" `Quick test_trace_records_in_order;
    Alcotest.test_case "trace chrome format" `Quick test_trace_chrome_format;
    Alcotest.test_case "trace format_of_string" `Quick
      test_trace_format_of_string;
    Alcotest.test_case "trace write_file" `Quick test_trace_write_file;
    Alcotest.test_case "obs none no-op" `Quick test_obs_none_is_noop;
    Alcotest.test_case "obs tracing guard" `Quick test_obs_tracing_guard;
    Alcotest.test_case "dinic stats reconcile" `Quick
      test_dinic_stats_reconcile;
    Alcotest.test_case "token_sim clocks reconcile" `Quick
      test_token_sim_clocks_reconcile;
    Alcotest.test_case "monitor instructions reconcile" `Quick
      test_monitor_instructions_reconcile;
  ]
