(* Tests for the packet-switched baseline network. *)

module Packet_net = Rsin_sim.Packet_net
module Builders = Rsin_topology.Builders
module Prng = Rsin_util.Prng

let check = Alcotest.check

let params =
  { Packet_net.arrival_prob = 0.05; packets_per_task = 3; mean_service = 4.;
    buffer_capacity = 2; slots = 2000; warmup = 400 }

let test_sanity () =
  let m = Packet_net.run (Prng.create 1) (Builders.omega 8) params in
  check Alcotest.bool "completes tasks" true (m.Packet_net.completed > 0);
  check Alcotest.bool "throughput positive" true (m.Packet_net.throughput > 0.);
  check Alcotest.bool "serving <= reserved" true
    (m.Packet_net.serving_utilization <= m.Packet_net.reserved_utilization +. 1e-9);
  check Alcotest.bool "utilizations in range" true
    (m.Packet_net.reserved_utilization <= 1.0
    && m.Packet_net.serving_utilization >= 0.);
  check Alcotest.bool "responses measured" true
    (m.Packet_net.mean_response > 0.)

let test_response_floor () =
  (* response >= packets + path pipeline + service lower bound at any
     load: with 3 packets and service mean 4, responses below ~6 slots
     are impossible *)
  let m = Packet_net.run (Prng.create 2) (Builders.omega 8)
      { params with arrival_prob = 0.01 } in
  check Alcotest.bool "response above physical floor" true
    (m.Packet_net.mean_response >= 6.)

let test_load_monotonicity () =
  let run a =
    Packet_net.run (Prng.create 3) (Builders.omega 16)
      { params with arrival_prob = a; slots = 4000; warmup = 800 }
  in
  let low = run 0.01 and high = run 0.08 in
  check Alcotest.bool "throughput grows with load" true
    (high.Packet_net.throughput > low.Packet_net.throughput);
  check Alcotest.bool "reservation grows with load" true
    (high.Packet_net.reserved_utilization > low.Packet_net.reserved_utilization)

let test_reservation_overhead () =
  (* the paper's claim: with multi-packet tasks, reserved > serving by a
     visible margin (the resource idles while packets arrive) *)
  let m = Packet_net.run (Prng.create 4) (Builders.omega 16)
      { params with arrival_prob = 0.05; packets_per_task = 6; slots = 4000 } in
  check Alcotest.bool "reservation overhead visible" true
    (m.Packet_net.reserved_utilization > 1.3 *. m.Packet_net.serving_utilization)

let test_single_packet_tasks () =
  (* degenerate case: one packet per task still works *)
  let m = Packet_net.run (Prng.create 5) (Builders.omega 8)
      { params with packets_per_task = 1 } in
  check Alcotest.bool "single-packet tasks complete" true
    (m.Packet_net.completed > 0)

let test_validation () =
  Alcotest.check_raises "bad buffer"
    (Invalid_argument "Packet_net.run: buffer_capacity") (fun () ->
      ignore
        (Packet_net.run (Prng.create 1) (Builders.omega 8)
           { params with buffer_capacity = 0 }));
  (* multipath networks still run: the routing table derived from the
     deterministic shortest paths is destination-consistent, so the
     packet network simply uses one tree of routes *)
  let m = Packet_net.run (Prng.create 1) (Builders.benes 8) params in
  check Alcotest.bool "benes runs packet-switched" true (m.Packet_net.completed > 0)

let test_reserved_idle_gauge () =
  (* reserved-but-idle is reported directly and exported as a gauge *)
  let obs = Rsin_obs.Obs.create () in
  let m = Packet_net.run ~obs (Prng.create 7) (Builders.omega 16)
      { params with packets_per_task = 6; slots = 4000 } in
  check (Alcotest.float 1e-9) "idle = reserved - serving"
    (m.Packet_net.reserved_utilization -. m.Packet_net.serving_utilization)
    m.Packet_net.reserved_idle;
  check Alcotest.bool "idle overhead positive" true (m.Packet_net.reserved_idle > 0.);
  let mreg = obs.Rsin_obs.Obs.metrics in
  (match Rsin_obs.Metrics.find mreg "packet_net.reserved_idle" with
  | Some (Rsin_obs.Metrics.Gauge g) ->
    check (Alcotest.float 1e-9) "gauge matches" m.Packet_net.reserved_idle g
  | _ -> Alcotest.fail "packet_net.reserved_idle gauge missing");
  check Alcotest.int "completed counter" m.Packet_net.completed
    (Rsin_obs.Metrics.get_counter mreg "packet_net.completed")

let test_deterministic () =
  let run () = Packet_net.run (Prng.create 6) (Builders.omega 8) params in
  check Alcotest.int "same seed, same completions"
    (run ()).Packet_net.completed
    (run ()).Packet_net.completed

let suite =
  [
    Alcotest.test_case "sanity" `Quick test_sanity;
    Alcotest.test_case "response floor" `Quick test_response_floor;
    Alcotest.test_case "load monotonicity" `Quick test_load_monotonicity;
    Alcotest.test_case "reservation overhead" `Quick test_reservation_overhead;
    Alcotest.test_case "single-packet tasks" `Quick test_single_packet_tasks;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "reserved-idle gauge" `Quick test_reserved_idle_gauge;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
