(* Tests for the flow library: residual graphs, Edmonds-Karp, Dinic,
   min-cost flow (SSP and out-of-kilter), decomposition and cuts. *)

open Rsin_flow
module Prng = Rsin_util.Prng

let check = Alcotest.check
let qtest name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* --- Graph primitives ---------------------------------------------------- *)

let test_graph_basics () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let e = Graph.add_arc g ~src:a ~dst:b ~cap:3 ~cost:7 in
  check Alcotest.int "nodes" 2 (Graph.node_count g);
  check Alcotest.int "arcs" 1 (Graph.arc_count g);
  check Alcotest.int "src" a (Graph.src g e);
  check Alcotest.int "dst" b (Graph.dst g e);
  check Alcotest.int "cap" 3 (Graph.capacity g e);
  check Alcotest.int "cost" 7 (Graph.cost g e);
  check Alcotest.int "residual cost" (-7) (Graph.cost g (Graph.residual e));
  check Alcotest.bool "forward" true (Graph.is_forward e);
  check Alcotest.bool "residual not forward" false (Graph.is_forward (Graph.residual e));
  Graph.push g e 2;
  check Alcotest.int "flow" 2 (Graph.flow g e);
  check Alcotest.int "residual cap" 1 (Graph.capacity g e);
  check Alcotest.int "back cap" 2 (Graph.capacity g (Graph.residual e));
  Graph.push g (Graph.residual e) 1;
  check Alcotest.int "cancelled" 1 (Graph.flow g e);
  Graph.set_flow g e 3;
  check Alcotest.int "set_flow" 3 (Graph.flow g e);
  Graph.reset_flows g;
  check Alcotest.int "reset" 0 (Graph.flow g e)

let test_graph_invalid () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  Alcotest.check_raises "negative cap" (Invalid_argument "Graph.add_arc: bad capacity")
    (fun () -> ignore (Graph.add_arc g ~src:a ~dst:b ~cap:(-1)));
  let e = Graph.add_arc g ~src:a ~dst:b ~cap:1 in
  Alcotest.check_raises "over push" (Invalid_argument "Graph.push: over capacity")
    (fun () -> Graph.push g e 2)

let test_graph_total_cost_and_outflow () =
  let g = Graph.create () in
  let s = Graph.add_node g and m = Graph.add_node g and t = Graph.add_node g in
  let e1 = Graph.add_arc g ~src:s ~dst:m ~cap:2 ~cost:3 in
  let e2 = Graph.add_arc g ~src:m ~dst:t ~cap:2 ~cost:5 in
  Graph.push g e1 2;
  Graph.push g e2 2;
  check Alcotest.int "total cost" 16 (Graph.total_cost g);
  check Alcotest.int "source outflow" 2 (Graph.out_flow g s);
  check Alcotest.int "middle conserved" 0 (Graph.out_flow g m);
  check Alcotest.(result unit string) "conservation ok" (Ok ())
    (Graph.check_conservation g ~source:s ~sink:t)

let test_graph_copy_independent () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  let e = Graph.add_arc g ~src:s ~dst:t ~cap:4 in
  let h = Graph.copy g in
  Graph.push g e 4;
  check Alcotest.int "copy unchanged" 0 (Graph.flow h e)

let test_graph_set_capacity () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let e = Graph.add_arc g ~src:a ~dst:b ~cap:2 in
  Graph.push g e 1;
  Graph.set_capacity g e 5;
  check Alcotest.int "original raised" 5 (Graph.original_capacity g e);
  check Alcotest.int "residual reflects flow" 4 (Graph.capacity g e);
  check Alcotest.int "flow untouched" 1 (Graph.flow g e);
  Graph.set_capacity g e 1;
  check Alcotest.int "lowered to flow" 0 (Graph.capacity g e);
  Alcotest.check_raises "below flow"
    (Invalid_argument "Graph.set_capacity: below current flow") (fun () ->
      Graph.set_capacity g e 0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Graph.set_capacity: negative capacity") (fun () ->
      Graph.set_capacity g e (-1));
  Alcotest.check_raises "residual arc"
    (Invalid_argument "Graph.set_capacity: residual arc") (fun () ->
      Graph.set_capacity g (Graph.residual e) 3)

let test_graph_freeze_thaw () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let e = Graph.add_arc g ~src:a ~dst:b ~cap:1 in
  Alcotest.check_raises "freeze unsaturated"
    (Invalid_argument "Graph.freeze: arc not saturated") (fun () ->
      Graph.freeze g e);
  Graph.push g e 1;
  Graph.freeze g e;
  check Alcotest.int "no forward residual" 0 (Graph.capacity g e);
  check Alcotest.int "no backward residual" 0
    (Graph.capacity g (Graph.residual e));
  check Alcotest.int "flow survives freeze" 1 (Graph.flow g e);
  Graph.thaw g e;
  check Alcotest.int "backward residual restored" 1
    (Graph.capacity g (Graph.residual e));
  check Alcotest.int "flow survives thaw" 1 (Graph.flow g e)

(* Warm start: solve, freeze the allocation, open more capacity and
   augment — the total must match a from-scratch solve of the final
   graph, and the frozen flow must be untouched. *)
let test_dinic_augment_warm () =
  let build () =
    let g = Graph.create () in
    let s = Graph.add_node g and m = Graph.add_node g and t = Graph.add_node g in
    let sm = Graph.add_arc g ~src:s ~dst:m ~cap:1 in
    let mt = Graph.add_arc g ~src:m ~dst:t ~cap:1 in
    let sm2 = Graph.add_arc g ~src:s ~dst:m ~cap:0 in
    let mt2 = Graph.add_arc g ~src:m ~dst:t ~cap:0 in
    (g, s, t, sm, mt, sm2, mt2)
  in
  let g, s, t, sm, mt, sm2, mt2 = build () in
  let v1, _ = Dinic.augment g ~source:s ~sink:t in
  check Alcotest.int "first phase" 1 v1;
  Graph.freeze g sm;
  Graph.freeze g mt;
  Graph.set_capacity g sm2 1;
  Graph.set_capacity g mt2 1;
  let v2, _ = Dinic.augment g ~source:s ~sink:t in
  check Alcotest.int "incremental phase adds only the delta" 1 v2;
  check Alcotest.int "frozen arc kept its flow" 1 (Graph.flow g sm);
  check Alcotest.int "new flow on the opened arcs" 1 (Graph.flow g sm2);
  (* From scratch on the same final capacities. *)
  let g', s', t', _, _, sm2', mt2' = build () in
  Graph.set_capacity g' sm2' 1;
  Graph.set_capacity g' mt2' 1;
  let total, _ = Dinic.max_flow g' ~source:s' ~sink:t' in
  check Alcotest.int "warm total equals cold total" total (v1 + v2)

(* --- Random graph generator for property tests --------------------------- *)

(* Layered random DAG resembling transformed MRSINs plus extra random
   arcs; capacities 1..3. Returns (graph, source, sink). *)
let random_graph seed ~layers ~width ~extra =
  let rng = Prng.create seed in
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  let nodes =
    Array.init layers (fun _ -> Array.init width (fun _ -> Graph.add_node g))
  in
  Array.iter
    (fun n -> if Prng.bool rng then ignore (Graph.add_arc g ~src:s ~dst:n ~cap:(1 + Prng.int rng 3)))
    nodes.(0);
  for l = 0 to layers - 2 do
    Array.iter
      (fun u ->
        Array.iter
          (fun v ->
            if Prng.bernoulli rng 0.4 then
              ignore (Graph.add_arc g ~src:u ~dst:v ~cap:(1 + Prng.int rng 3)
                        ~cost:(Prng.int rng 10)))
          nodes.(l + 1))
      nodes.(l)
  done;
  Array.iter
    (fun n -> if Prng.bool rng then ignore (Graph.add_arc g ~src:n ~dst:t ~cap:(1 + Prng.int rng 3)))
    nodes.(layers - 1);
  for _ = 1 to extra do
    (* skip-layer arcs keep it acyclic *)
    let l1 = Prng.int rng (layers - 1) in
    let l2 = l1 + 1 + Prng.int rng (layers - l1 - 1) in
    let u = nodes.(l1).(Prng.int rng width) and v = nodes.(l2).(Prng.int rng width) in
    ignore (Graph.add_arc g ~src:u ~dst:v ~cap:(1 + Prng.int rng 2) ~cost:(Prng.int rng 10))
  done;
  (g, s, t)

let mf_params = QCheck.(triple small_int (int_range 2 5) (int_range 1 5))

(* --- Max flow ------------------------------------------------------------- *)

let test_maxflow_known () =
  (* Classic diamond with a cross arc: max flow 2000+1... use CLRS-like
     instance with known value. *)
  let g = Graph.create () in
  let s = Graph.add_node g and a = Graph.add_node g and b = Graph.add_node g
  and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:a ~cap:1000);
  ignore (Graph.add_arc g ~src:s ~dst:b ~cap:1000);
  ignore (Graph.add_arc g ~src:a ~dst:b ~cap:1);
  ignore (Graph.add_arc g ~src:a ~dst:t ~cap:1000);
  ignore (Graph.add_arc g ~src:b ~dst:t ~cap:1000);
  let f, _ = Dinic.max_flow g ~source:s ~sink:t in
  check Alcotest.int "dinic diamond" 2000 f;
  Graph.reset_flows g;
  let f', _ = Edmonds_karp.max_flow g ~source:s ~sink:t in
  check Alcotest.int "ek diamond" 2000 f'

let test_maxflow_disconnected () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  let f, _ = Dinic.max_flow g ~source:s ~sink:t in
  check Alcotest.int "no arcs" 0 f

let test_maxflow_self_parallel () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:2);
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:3);
  let f, _ = Dinic.max_flow g ~source:s ~sink:t in
  check Alcotest.int "parallel arcs" 5 f

let dinic_equals_ek =
  qtest "Dinic = Edmonds-Karp on random DAGs" ~count:150 mf_params
    (fun (seed, layers, width) ->
      let g1, s, t = random_graph seed ~layers ~width ~extra:4 in
      let g2 = Graph.copy g1 in
      let f1, _ = Dinic.max_flow g1 ~source:s ~sink:t in
      let f2, _ = Edmonds_karp.max_flow g2 ~source:s ~sink:t in
      f1 = f2)

let maxflow_legal =
  qtest "max flow is a legal flow" ~count:150 mf_params
    (fun (seed, layers, width) ->
      let g, s, t = random_graph seed ~layers ~width ~extra:4 in
      let f, _ = Dinic.max_flow g ~source:s ~sink:t in
      Graph.check_conservation g ~source:s ~sink:t = Ok ()
      && Graph.flow_value g ~source:s = f)

let mincut_matches_maxflow =
  qtest "min cut capacity = max flow" ~count:150 mf_params
    (fun (seed, layers, width) ->
      let g, s, t = random_graph seed ~layers ~width ~extra:4 in
      let f, _ = Edmonds_karp.max_flow g ~source:s ~sink:t in
      let cut = Edmonds_karp.min_cut g ~source:s ~sink:t in
      let cap = List.fold_left (fun acc a -> acc + Graph.original_capacity g a) 0 cut in
      cap = f)

let test_augmenting_path_api () =
  let g = Graph.create () in
  let s = Graph.add_node g and m = Graph.add_node g and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:m ~cap:1);
  ignore (Graph.add_arc g ~src:m ~dst:t ~cap:1);
  (match Edmonds_karp.find_augmenting_path g ~source:s ~sink:t with
  | None -> Alcotest.fail "expected a path"
  | Some path ->
    check Alcotest.int "path length" 2 (List.length path);
    check Alcotest.int "augment pushes 1" 1 (Edmonds_karp.augment g path));
  check Alcotest.(option (list int)) "saturated" None
    (Edmonds_karp.find_augmenting_path g ~source:s ~sink:t)

(* Paper Fig. 3: augmentation through s-c-d-a-b-t cancels flow on (d,a)'s
   counterpart and yields two unit paths. *)
let test_fig3_augmentation () =
  let g = Graph.create () in
  let s = Graph.add_node g and a = Graph.add_node g and b = Graph.add_node g
  and c = Graph.add_node g and d = Graph.add_node g and t = Graph.add_node g in
  let sa = Graph.add_arc g ~src:s ~dst:a ~cap:1 in
  let _sc = Graph.add_arc g ~src:c ~dst:d ~cap:1 in
  ignore _sc;
  let ad = Graph.add_arc g ~src:a ~dst:d ~cap:1 in
  let ab = Graph.add_arc g ~src:a ~dst:b ~cap:1 in
  let sc = Graph.add_arc g ~src:s ~dst:c ~cap:1 in
  let dt = Graph.add_arc g ~src:d ~dst:t ~cap:1 in
  let bt = Graph.add_arc g ~src:b ~dst:t ~cap:1 in
  (* initial flow along s-a-d-t *)
  Graph.push g sa 1;
  Graph.push g ad 1;
  Graph.push g dt 1;
  check Alcotest.int "initial flow" 1 (Graph.flow_value g ~source:s);
  (* the augmenting path must route through the residual of (a,d) *)
  (match Edmonds_karp.find_augmenting_path g ~source:s ~sink:t with
  | None -> Alcotest.fail "augmenting path must exist"
  | Some path ->
    check Alcotest.bool "uses residual arc" true
      (List.mem (Graph.residual ad) path);
    ignore (Edmonds_karp.augment g path));
  check Alcotest.int "final flow" 2 (Graph.flow_value g ~source:s);
  check Alcotest.int "cancelled arc" 0 (Graph.flow g ad);
  check Alcotest.int "ab used" 1 (Graph.flow g ab);
  check Alcotest.int "sc used" 1 (Graph.flow g sc);
  check Alcotest.int "bt used" 1 (Graph.flow g bt)

(* --- Dinic layered API ----------------------------------------------------- *)

let test_layers () =
  let g = Graph.create () in
  let s = Graph.add_node g and a = Graph.add_node g and b = Graph.add_node g
  and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:a ~cap:1);
  ignore (Graph.add_arc g ~src:a ~dst:b ~cap:1);
  ignore (Graph.add_arc g ~src:b ~dst:t ~cap:1);
  (match Dinic.build_layers g ~source:s ~sink:t with
  | None -> Alcotest.fail "layers must exist"
  | Some l ->
    check Alcotest.int "source level" 0 (Dinic.level l s);
    check Alcotest.int "a level" 1 (Dinic.level l a);
    check Alcotest.int "sink level" 3 (Dinic.level l t);
    check Alcotest.int "num layers" 4 (Dinic.num_layers l);
    let added, _ = Dinic.blocking_flow g l ~source:s ~sink:t in
    check Alcotest.int "blocking flow" 1 added);
  check Alcotest.bool "saturated: no layers" true
    (Dinic.build_layers g ~source:s ~sink:t = None)

let test_unreachable_level () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  let orphan = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:1);
  match Dinic.build_layers g ~source:s ~sink:t with
  | None -> Alcotest.fail "layers must exist"
  | Some l -> check Alcotest.int "orphan level -1" (-1) (Dinic.level l orphan)

(* --- Min-cost flow ---------------------------------------------------------- *)

let test_mincost_known () =
  (* Two routes: cheap cap-1 (cost 1), expensive cap-2 (cost 5). Pushing 2
     units must use one of each: cost 1 + 5 = 6. *)
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:1);
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:2 ~cost:5);
  let r = Mincost.min_cost_flow g ~source:s ~sink:t ~amount:2 in
  check Alcotest.int "flow" 2 r.Mincost.flow;
  check Alcotest.int "cost" 6 r.Mincost.cost

let test_mincost_partial () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:1);
  let r = Mincost.min_cost_flow g ~source:s ~sink:t ~amount:5 in
  check Alcotest.int "only capacity-feasible flow" 1 r.Mincost.flow

let test_mincost_negative_costs () =
  (* A negative-cost arc on the only path; Bellman-Ford bootstrap needed. *)
  let g = Graph.create () in
  let s = Graph.add_node g and m = Graph.add_node g and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:m ~cap:1 ~cost:(-5));
  ignore (Graph.add_arc g ~src:m ~dst:t ~cap:1 ~cost:2);
  let r = Mincost.min_cost_flow g ~source:s ~sink:t ~amount:1 in
  check Alcotest.int "flow" 1 r.Mincost.flow;
  check Alcotest.int "cost" (-3) r.Mincost.cost

let test_mincost_negative_cycle_rejected () =
  (* a negative-total cycle in the initial network must be detected *)
  let g = Graph.create () in
  let s = Graph.add_node g and a = Graph.add_node g and b = Graph.add_node g
  and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:a ~cap:1 ~cost:0);
  ignore (Graph.add_arc g ~src:a ~dst:b ~cap:1 ~cost:(-5));
  ignore (Graph.add_arc g ~src:b ~dst:a ~cap:1 ~cost:2);
  ignore (Graph.add_arc g ~src:b ~dst:t ~cap:1 ~cost:0);
  Alcotest.check_raises "negative cycle"
    (Failure "Mincost: negative cycle in input network") (fun () ->
      ignore (Mincost.min_cost_flow g ~source:s ~sink:t ~amount:1))

let test_out_of_kilter_negative_costs () =
  (* negative-cost arc: the optimum saturates it *)
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:(-4));
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:3);
  ignore (Graph.add_arc g ~src:t ~dst:s ~cap:2 ~low:2);
  (match Out_of_kilter.solve g with
  | Out_of_kilter.Optimal c, _ -> check Alcotest.int "cost -1" (-1) c
  | Out_of_kilter.Infeasible, _ -> Alcotest.fail "feasible circulation exists")

let test_mincost_prefers_cheap () =
  let g = Graph.create () in
  let s = Graph.add_node g and a = Graph.add_node g and b = Graph.add_node g
  and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:a ~cap:1 ~cost:0);
  ignore (Graph.add_arc g ~src:s ~dst:b ~cap:1 ~cost:0);
  ignore (Graph.add_arc g ~src:a ~dst:t ~cap:1 ~cost:10);
  ignore (Graph.add_arc g ~src:b ~dst:t ~cap:1 ~cost:1);
  let r = Mincost.min_cost_flow g ~source:s ~sink:t ~amount:1 in
  check Alcotest.int "cheap route" 1 r.Mincost.cost

(* Reference: brute-force min cost of pushing [amount] units, by
   enumerating integral flows recursively on small graphs. *)
let brute_force_min_cost g0 ~source ~sink ~amount =
  let narcs = Graph.arc_count g0 in
  let caps = Array.init narcs (fun i -> Graph.original_capacity g0 (2 * i)) in
  let best = ref None in
  let flows = Array.make narcs 0 in
  (* enumerate all arc-flow vectors bounded by caps; check conservation *)
  let rec enum i =
    if i = narcs then begin
      let g = Graph.copy g0 in
      Graph.reset_flows g;
      (try
         Array.iteri (fun j f -> Graph.set_flow g (2 * j) f) flows;
         if
           Graph.check_conservation g ~source ~sink = Ok ()
           && Graph.flow_value g ~source = amount
         then
           let c = Graph.total_cost g in
           match !best with
           | None -> best := Some c
           | Some b -> if c < b then best := Some c
       with Invalid_argument _ -> ())
    end
    else
      for f = 0 to caps.(i) do
        flows.(i) <- f;
        enum (i + 1)
      done
  in
  enum 0;
  !best

let mincost_matches_bruteforce =
  qtest "SSP matches brute force on tiny graphs" ~count:60
    QCheck.(pair small_int (int_range 1 2))
    (fun (seed, amount) ->
      let rng = Prng.create seed in
      (* tiny graph: 2 middle nodes, arcs with caps 1, costs 0..4 *)
      let g = Graph.create () in
      let s = Graph.add_node g and a = Graph.add_node g
      and b = Graph.add_node g and t = Graph.add_node g in
      let maybe u v =
        if Prng.bernoulli rng 0.8 then
          ignore (Graph.add_arc g ~src:u ~dst:v ~cap:1 ~cost:(Prng.int rng 5))
      in
      maybe s a; maybe s b; maybe a b; maybe a t; maybe b t;
      let reference = brute_force_min_cost g ~source:s ~sink:t ~amount in
      let g' = Graph.copy g in
      let r = Mincost.min_cost_flow g' ~source:s ~sink:t ~amount in
      match reference with
      | None -> r.Mincost.flow < amount
      | Some c -> r.Mincost.flow = amount && r.Mincost.cost = c)

(* --- Out-of-kilter ----------------------------------------------------------- *)

let circulation_of_flow_instance g s t ~amount =
  ignore (Graph.add_arc g ~src:t ~dst:s ~cap:amount ~low:amount);
  g

let test_out_of_kilter_known () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:1);
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:2 ~cost:5);
  let g = circulation_of_flow_instance g s t ~amount:2 in
  (match Out_of_kilter.solve g with
  | Out_of_kilter.Optimal c, _ -> check Alcotest.int "cost" 6 c
  | Out_of_kilter.Infeasible, _ -> Alcotest.fail "should be feasible")

let test_out_of_kilter_infeasible () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:0);
  let g = circulation_of_flow_instance g s t ~amount:3 in
  match Out_of_kilter.solve g with
  | Out_of_kilter.Infeasible, _ -> ()
  | Out_of_kilter.Optimal _, _ -> Alcotest.fail "demand 3 over capacity 1"

let test_kilter_number () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let e = Graph.add_arc g ~src:a ~dst:b ~cap:2 ~cost:1 ~low:1 in
  let pot = [| 0; 0 |] in
  (* rc = 1 > 0, x = 0 < low=1: kilter number 1 *)
  check Alcotest.int "below lower bound" 1 (Out_of_kilter.kilter_number g ~pot e);
  Graph.set_flow g e 1;
  check Alcotest.int "in kilter" 0 (Out_of_kilter.kilter_number g ~pot e);
  (* make rc negative: flow must sit at cap *)
  let pot = [| 0; 5 |] in
  check Alcotest.int "rc<0 wants cap" 1 (Out_of_kilter.kilter_number g ~pot e)

let ook_matches_ssp =
  qtest "out-of-kilter matches SSP on random DAGs" ~count:80
    QCheck.(pair small_int (int_range 1 3))
    (fun (seed, amount) ->
      let g, s, t = random_graph seed ~layers:3 ~width:3 ~extra:2 in
      let g_ssp = Graph.copy g in
      let r = Mincost.min_cost_flow g_ssp ~source:s ~sink:t ~amount in
      if r.Mincost.flow < amount then true (* circulation would be infeasible *)
      else begin
        let g_ook = Graph.copy g in
        let g_ook = circulation_of_flow_instance g_ook s t ~amount in
        match Out_of_kilter.solve g_ook with
        | Out_of_kilter.Optimal c, _ -> c = r.Mincost.cost
        | Out_of_kilter.Infeasible, _ -> false
      end)

(* --- Decomposition ------------------------------------------------------------ *)

let test_decompose_simple () =
  let g = Graph.create () in
  let s = Graph.add_node g and a = Graph.add_node g and b = Graph.add_node g
  and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:a ~cap:1);
  ignore (Graph.add_arc g ~src:a ~dst:t ~cap:1);
  ignore (Graph.add_arc g ~src:s ~dst:b ~cap:1);
  ignore (Graph.add_arc g ~src:b ~dst:t ~cap:1);
  let f, _ = Dinic.max_flow g ~source:s ~sink:t in
  check Alcotest.int "flow 2" 2 f;
  let paths = Decompose.unit_paths g ~source:s ~sink:t in
  check Alcotest.int "two paths" 2 (List.length paths);
  List.iter
    (fun p ->
      check Alcotest.int "path length" 3 (List.length p);
      check Alcotest.int "starts at s" s (List.hd p);
      check Alcotest.int "ends at t" t (List.nth p (List.length p - 1)))
    paths

let decompose_counts_flow =
  qtest "decomposition path count = flow value" ~count:100 mf_params
    (fun (seed, layers, width) ->
      let g, s, t = random_graph seed ~layers ~width ~extra:3 in
      let f, _ = Dinic.max_flow g ~source:s ~sink:t in
      let paths = Decompose.unit_paths g ~source:s ~sink:t in
      List.length paths = f
      && List.for_all
           (fun p -> List.hd p = s && List.nth p (List.length p - 1) = t)
           paths)

let test_path_arcs () =
  let g = Graph.create () in
  let s = Graph.add_node g and m = Graph.add_node g and t = Graph.add_node g in
  let e1 = Graph.add_arc g ~src:s ~dst:m ~cap:1 in
  let e2 = Graph.add_arc g ~src:m ~dst:t ~cap:1 in
  Graph.push g e1 1;
  Graph.push g e2 1;
  check Alcotest.(list int) "arcs recovered" [ e1; e2 ]
    (Decompose.path_arcs g [ s; m; t ]);
  Alcotest.check_raises "disconnected hop" Not_found (fun () ->
      ignore (Decompose.path_arcs g [ s; t ]))

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "graph invalid" `Quick test_graph_invalid;
    Alcotest.test_case "graph cost/outflow" `Quick test_graph_total_cost_and_outflow;
    Alcotest.test_case "graph copy" `Quick test_graph_copy_independent;
    Alcotest.test_case "graph set_capacity" `Quick test_graph_set_capacity;
    Alcotest.test_case "graph freeze/thaw" `Quick test_graph_freeze_thaw;
    Alcotest.test_case "dinic warm augment" `Quick test_dinic_augment_warm;
    Alcotest.test_case "maxflow known" `Quick test_maxflow_known;
    Alcotest.test_case "maxflow disconnected" `Quick test_maxflow_disconnected;
    Alcotest.test_case "maxflow parallel arcs" `Quick test_maxflow_self_parallel;
    dinic_equals_ek;
    maxflow_legal;
    mincut_matches_maxflow;
    Alcotest.test_case "augmenting path api" `Quick test_augmenting_path_api;
    Alcotest.test_case "fig3 augmentation" `Quick test_fig3_augmentation;
    Alcotest.test_case "dinic layers" `Quick test_layers;
    Alcotest.test_case "unreachable level" `Quick test_unreachable_level;
    Alcotest.test_case "mincost known" `Quick test_mincost_known;
    Alcotest.test_case "mincost partial" `Quick test_mincost_partial;
    Alcotest.test_case "mincost negative costs" `Quick test_mincost_negative_costs;
    Alcotest.test_case "mincost prefers cheap" `Quick test_mincost_prefers_cheap;
    Alcotest.test_case "mincost negative cycle rejected" `Quick
      test_mincost_negative_cycle_rejected;
    Alcotest.test_case "out-of-kilter negative costs" `Quick
      test_out_of_kilter_negative_costs;
    mincost_matches_bruteforce;
    Alcotest.test_case "out-of-kilter known" `Quick test_out_of_kilter_known;
    Alcotest.test_case "out-of-kilter infeasible" `Quick test_out_of_kilter_infeasible;
    Alcotest.test_case "kilter numbers" `Quick test_kilter_number;
    ook_matches_ssp;
    Alcotest.test_case "decompose simple" `Quick test_decompose_simple;
    decompose_counts_flow;
    Alcotest.test_case "path arcs" `Quick test_path_arcs;
  ]
