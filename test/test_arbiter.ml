(* Crossbar arbiter properties: matching validity, maximality (work
   conservation), iSLIP convergence and fairness, registry. *)

module Arbiter = Rsin_packet.Arbiter

let check = Alcotest.check

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* (fan_in, fan_out, request matrix) generator *)
let matrix_gen =
  QCheck.Gen.(
    let* fi = int_range 1 6 in
    let* fo = int_range 1 6 in
    let* m = array_size (return fi) (array_size (return fo) bool) in
    return (fi, fo, m))

let matrix_print (fi, fo, m) =
  Printf.sprintf "%dx%d %s" fi fo
    (String.concat ";"
       (Array.to_list
          (Array.map
             (fun row ->
               String.concat ""
                 (Array.to_list (Array.map (fun b -> if b then "1" else "0") row)))
             m)))

let matrix_arb = QCheck.make ~print:matrix_print matrix_gen

let valid_matching ~fi ~fo requests grants =
  let in_used = Array.make fi false and out_used = Array.make fo false in
  List.for_all
    (fun { Arbiter.input; output } ->
      let ok =
        input >= 0 && input < fi && output >= 0 && output < fo
        && requests.(input).(output)
        && (not in_used.(input))
        && not out_used.(output)
      in
      in_used.(input) <- true;
      out_used.(output) <- true;
      ok)
    grants

let maximal ~fi ~fo requests grants =
  let in_used = Array.make fi false and out_used = Array.make fo false in
  List.iter
    (fun { Arbiter.input; output } ->
      in_used.(input) <- true;
      out_used.(output) <- true)
    grants;
  let ok = ref true in
  for i = 0 to fi - 1 do
    for o = 0 to fo - 1 do
      if requests.(i).(o) && (not in_used.(i)) && not out_used.(o) then
        ok := false
    done
  done;
  !ok

let for_each_arbiter prop (fi, fo, m) =
  List.for_all
    (fun (module A : Arbiter.S) ->
      let inst = A.create ~fan_in:fi ~fan_out:fo in
      (* several rounds so the rotation pointers move *)
      let ok = ref true in
      for _ = 1 to 4 do
        if not (prop ~fi ~fo m (inst.Arbiter.arbitrate m)) then ok := false
      done;
      !ok)
    Arbiter.all

let prop_valid = for_each_arbiter valid_matching
let prop_maximal = for_each_arbiter maximal

let prop_matrix_untouched (fi, fo, m) =
  let copy = Array.map Array.copy m in
  List.iter
    (fun (module A : Arbiter.S) ->
      let inst = A.create ~fan_in:fi ~fan_out:fo in
      ignore (inst.Arbiter.arbitrate m))
    Arbiter.all;
  m = copy

let prop_deterministic (fi, fo, m) =
  List.for_all
    (fun (module A : Arbiter.S) ->
      let a = A.create ~fan_in:fi ~fan_out:fo in
      let b = A.create ~fan_in:fi ~fan_out:fo in
      let rounds = List.init 5 (fun _ -> a.Arbiter.arbitrate m) in
      List.for_all (fun g -> b.Arbiter.arbitrate m = g) rounds)
    Arbiter.all

(* Cutting iSLIP's iterations can only shrink the matching of a fresh
   instance; the registered module's iteration budget reaches maximality. *)
let prop_islip_converges (fi, fo, m) =
  let size k =
    let inst = Arbiter.islip_with_iterations ~iterations:k ~fan_in:fi ~fan_out:fo in
    List.length (inst.Arbiter.arbitrate m)
  in
  let full = max fi fo in
  let ok = ref (valid_matching ~fi ~fo m
      ((Arbiter.islip_with_iterations ~iterations:1 ~fan_in:fi ~fan_out:fo)
         .Arbiter.arbitrate m))
  in
  for k = 1 to full - 1 do
    if size k > size (k + 1) then ok := false
  done;
  let inst = Arbiter.islip_with_iterations ~iterations:full ~fan_in:fi ~fan_out:fo in
  !ok && maximal ~fi ~fo m (inst.Arbiter.arbitrate m)

(* Persistent demand: a fixed matrix giving every input at least one
   request; over a long run no input is starved, for either arbiter. *)
let persistent_gen =
  QCheck.Gen.(
    let* fi = int_range 2 5 in
    let* fo = int_range 1 5 in
    let* m = array_size (return fi) (array_size (return fo) bool) in
    let* forced = array_size (return fi) (int_range 0 (fo - 1)) in
    Array.iteri (fun i o -> m.(i).(o) <- true) forced;
    return (fi, fo, m))

let prop_no_starvation (fi, fo, m) =
  List.for_all
    (fun (module A : Arbiter.S) ->
      let inst = A.create ~fan_in:fi ~fan_out:fo in
      let served = Array.make fi 0 in
      let cycles = 16 * fi * fo in
      for _ = 1 to cycles do
        List.iter
          (fun { Arbiter.input; _ } -> served.(input) <- served.(input) + 1)
          (inst.Arbiter.arbitrate m)
      done;
      Array.for_all (fun n -> n > 0) served)
    Arbiter.all

(* All inputs fighting for one output: iSLIP's accepted-grant pointer
   update degrades to exact round-robin — perfectly fair shares. *)
let test_islip_single_output_fair () =
  let fi = 4 in
  let inst = Arbiter.Islip.create ~fan_in:fi ~fan_out:1 in
  let m = Array.make_matrix fi 1 true in
  let served = Array.make fi 0 in
  for _ = 1 to 64 do
    match inst.Arbiter.arbitrate m with
    | [ { Arbiter.input; output } ] ->
      check Alcotest.int "output" 0 output;
      served.(input) <- served.(input) + 1
    | gs -> Alcotest.failf "expected one grant, got %d" (List.length gs)
  done;
  Array.iteri
    (fun i n -> check Alcotest.int (Printf.sprintf "input %d share" i) 16 n)
    served

(* Full demand on a square box: maximal matching must be perfect. *)
let test_full_demand_perfect () =
  List.iter
    (fun (module A : Arbiter.S) ->
      let inst = A.create ~fan_in:4 ~fan_out:4 in
      let m = Array.make_matrix 4 4 true in
      for _ = 1 to 8 do
        check Alcotest.int (A.name ^ " perfect") 4
          (List.length (inst.Arbiter.arbitrate m))
      done)
    Arbiter.all

let test_registry () =
  check Alcotest.(list string) "names" [ "rr"; "islip" ] (Arbiter.names ());
  (match Arbiter.find "islip" with
  | Some (module A) -> check Alcotest.string "find" "islip" A.name
  | None -> Alcotest.fail "islip not found");
  check Alcotest.bool "find unknown" true (Arbiter.find "xbar" = None);
  Alcotest.check_raises "get unknown"
    (Invalid_argument "Arbiter.get: unknown arbiter \"xbar\" (known: rr, islip)")
    (fun () -> ignore (Arbiter.get "xbar"))

let test_bad_args () =
  Alcotest.check_raises "fan_in" (Invalid_argument "Arbiter: fan_in must be >= 1")
    (fun () -> ignore (Arbiter.Naive_rr.create ~fan_in:0 ~fan_out:2));
  Alcotest.check_raises "iterations"
    (Invalid_argument "Arbiter: iterations must be >= 1") (fun () ->
      ignore (Arbiter.islip_with_iterations ~iterations:0 ~fan_in:2 ~fan_out:2))

let suite =
  [
    qtest "matching is valid" matrix_arb prop_valid;
    qtest "matching is maximal" matrix_arb prop_maximal;
    qtest "request matrix not mutated" matrix_arb prop_matrix_untouched;
    qtest "deterministic given history" matrix_arb prop_deterministic;
    qtest "islip iteration monotone + converges" matrix_arb prop_islip_converges;
    qtest "no starvation under persistent demand"
      (QCheck.make ~print:matrix_print persistent_gen)
      prop_no_starvation;
    Alcotest.test_case "islip single hot output is fair" `Quick
      test_islip_single_output_fair;
    Alcotest.test_case "full demand gives perfect matching" `Quick
      test_full_demand_perfect;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "argument validation" `Quick test_bad_args;
  ]
