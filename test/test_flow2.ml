(* Tests for the second wave of flow algorithms: push-relabel and
   Hopcroft-Karp, cross-validated against Dinic. *)

open Rsin_flow
module Prng = Rsin_util.Prng

let check = Alcotest.check
let qtest name ?(count = 150) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* same generator family as test_flow *)
let random_graph seed ~layers ~width ~extra =
  let rng = Prng.create seed in
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  let nodes =
    Array.init layers (fun _ -> Array.init width (fun _ -> Graph.add_node g))
  in
  Array.iter
    (fun n -> if Prng.bool rng then ignore (Graph.add_arc g ~src:s ~dst:n ~cap:(1 + Prng.int rng 3)))
    nodes.(0);
  for l = 0 to layers - 2 do
    Array.iter
      (fun u ->
        Array.iter
          (fun v ->
            if Prng.bernoulli rng 0.4 then
              ignore (Graph.add_arc g ~src:u ~dst:v ~cap:(1 + Prng.int rng 3)))
          nodes.(l + 1))
      nodes.(l)
  done;
  Array.iter
    (fun n -> if Prng.bool rng then ignore (Graph.add_arc g ~src:n ~dst:t ~cap:(1 + Prng.int rng 3)))
    nodes.(layers - 1);
  for _ = 1 to extra do
    let l1 = Prng.int rng (layers - 1) in
    let l2 = l1 + 1 + Prng.int rng (layers - l1 - 1) in
    let u = nodes.(l1).(Prng.int rng width) and v = nodes.(l2).(Prng.int rng width) in
    ignore (Graph.add_arc g ~src:u ~dst:v ~cap:(1 + Prng.int rng 2))
  done;
  (g, s, t)

(* --- Push-relabel ---------------------------------------------------------- *)

let test_pr_known () =
  let g = Graph.create () in
  let s = Graph.add_node g and a = Graph.add_node g and b = Graph.add_node g
  and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:a ~cap:1000);
  ignore (Graph.add_arc g ~src:s ~dst:b ~cap:1000);
  ignore (Graph.add_arc g ~src:a ~dst:b ~cap:1);
  ignore (Graph.add_arc g ~src:a ~dst:t ~cap:1000);
  ignore (Graph.add_arc g ~src:b ~dst:t ~cap:1000);
  let f, st = Push_relabel.max_flow g ~source:s ~sink:t in
  check Alcotest.int "diamond" 2000 f;
  check Alcotest.bool "did some pushes" true (st.Push_relabel.pushes > 0)

let test_pr_disconnected () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  let orphan = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:orphan ~cap:5);
  let f, _ = Push_relabel.max_flow g ~source:s ~sink:t in
  check Alcotest.int "sink unreachable" 0 f;
  (* the preflow pushed into the orphan must have been returned *)
  check Alcotest.(result unit string) "flow legal again" (Ok ())
    (Graph.check_conservation g ~source:s ~sink:t)

let pr_equals_dinic =
  qtest "push-relabel = Dinic" ~count:200
    QCheck.(triple small_int (int_range 2 5) (int_range 1 5))
    (fun (seed, layers, width) ->
      let g1, s, t = random_graph seed ~layers ~width ~extra:4 in
      let g2 = Graph.copy g1 in
      let f1, _ = Dinic.max_flow g1 ~source:s ~sink:t in
      let f2, _ = Push_relabel.max_flow g2 ~source:s ~sink:t in
      f1 = f2)

let pr_leaves_legal_flow =
  qtest "push-relabel leaves a legal flow of the right value" ~count:200
    QCheck.(triple small_int (int_range 2 5) (int_range 1 5))
    (fun (seed, layers, width) ->
      let g, s, t = random_graph seed ~layers ~width ~extra:4 in
      let f, _ = Push_relabel.max_flow g ~source:s ~sink:t in
      Graph.check_conservation g ~source:s ~sink:t = Ok ()
      && Graph.flow_value g ~source:s = f)

(* --- Out-of-kilter with interior lower bounds -------------------------------- *)

(* Random circulation instances with lower bounds on interior arcs,
   cross-validated against an LP formulation of the same problem. This
   exercises the kilter machinery the s-t reductions never touch. *)
let ook_with_lower_bounds_matches_lp =
  qtest "out-of-kilter with lower bounds = LP" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let g = Graph.create () in
      let n = 4 + Prng.int rng 3 in
      let nodes = Array.init n (fun _ -> Graph.add_node g) in
      (* a ring guarantees circulations exist; chords add choice *)
      let arcs = ref [] in
      for i = 0 to n - 1 do
        let cap = 2 + Prng.int rng 3 in
        let low = Prng.int rng 2 in
        arcs :=
          ( Graph.add_arc g ~src:nodes.(i) ~dst:nodes.((i + 1) mod n) ~cap ~low
              ~cost:(Prng.int rng 7 - 2),
            low, cap )
          :: !arcs
      done;
      for _ = 1 to n do
        let a = Prng.int rng n and b = Prng.int rng n in
        if a <> b then begin
          let cap = 1 + Prng.int rng 3 in
          arcs :=
            ( Graph.add_arc g ~src:nodes.(a) ~dst:nodes.(b) ~cap ~low:0
                ~cost:(Prng.int rng 7 - 2),
              0, cap )
            :: !arcs
        end
      done;
      (* LP: min sum c x, conservation at every node, l <= x <= u *)
      let module Simplex = Rsin_lp.Simplex in
      let lp = Simplex.create () in
      let vars =
        List.map
          (fun (a, low, cap) ->
            let v = Simplex.add_var ~obj:(float_of_int (Graph.cost g a)) lp in
            Simplex.add_constraint lp [ (v, 1.) ] Simplex.Le (float_of_int cap);
            Simplex.add_constraint lp [ (v, 1.) ] Simplex.Ge (float_of_int low);
            (a, v))
          !arcs
      in
      for v = 0 to n - 1 do
        let terms =
          List.filter_map
            (fun (a, var) ->
              if Graph.src g a = nodes.(v) then Some (var, -1.)
              else if Graph.dst g a = nodes.(v) then Some (var, 1.)
              else None)
            vars
        in
        if terms <> [] then Simplex.add_constraint lp terms Simplex.Eq 0.
      done;
      let sol = Simplex.solve lp in
      match (Rsin_flow.Out_of_kilter.solve g, sol.Simplex.status) with
      | (Rsin_flow.Out_of_kilter.Optimal c, _), Simplex.Optimal ->
        abs_float (float_of_int c -. sol.Simplex.objective) < 1e-6
      | (Rsin_flow.Out_of_kilter.Infeasible, _), Simplex.Infeasible -> true
      | (Rsin_flow.Out_of_kilter.Infeasible, _), Simplex.Optimal -> false
      | (Rsin_flow.Out_of_kilter.Optimal _, _), Simplex.Infeasible -> false
      | _, Simplex.Unbounded -> false (* circulations are bounded *))

(* --- Hopcroft-Karp ----------------------------------------------------------- *)

let test_hk_known () =
  let t = Hopcroft_karp.create ~n_left:3 ~n_right:3 in
  (* perfect matching exists only via 0-1, 1-0, 2-2 *)
  Hopcroft_karp.add_edge t 0 1;
  Hopcroft_karp.add_edge t 1 0;
  Hopcroft_karp.add_edge t 1 1;
  Hopcroft_karp.add_edge t 2 2;
  check Alcotest.int "perfect" 3 (Hopcroft_karp.matching_size t);
  let m = Hopcroft_karp.max_matching t in
  check Alcotest.int "pairs" 3 (List.length m);
  (* matching is injective on both sides *)
  let ls = List.map fst m and rs = List.map snd m in
  check Alcotest.bool "left distinct" true
    (List.length (List.sort_uniq compare ls) = 3);
  check Alcotest.bool "right distinct" true
    (List.length (List.sort_uniq compare rs) = 3)

let test_hk_empty () =
  let t = Hopcroft_karp.create ~n_left:0 ~n_right:5 in
  check Alcotest.int "no left side" 0 (Hopcroft_karp.matching_size t);
  let t = Hopcroft_karp.create ~n_left:3 ~n_right:3 in
  check Alcotest.int "no edges" 0 (Hopcroft_karp.matching_size t)

let test_hk_bounds () =
  let t = Hopcroft_karp.create ~n_left:2 ~n_right:2 in
  Alcotest.check_raises "bad edge" (Invalid_argument "Hopcroft_karp.add_edge")
    (fun () -> Hopcroft_karp.add_edge t 2 0)

let hk_equals_flow =
  qtest "Hopcroft-Karp = max-flow matching" ~count:200
    QCheck.(pair small_int (pair (int_range 1 8) (int_range 1 8)))
    (fun (seed, (nl, nr)) ->
      let rng = Prng.create seed in
      let hk = Hopcroft_karp.create ~n_left:nl ~n_right:nr in
      let g = Graph.create () in
      let s = Graph.add_node g and t = Graph.add_node g in
      let left = Array.init nl (fun _ -> Graph.add_node g) in
      let right = Array.init nr (fun _ -> Graph.add_node g) in
      Array.iter (fun u -> ignore (Graph.add_arc g ~src:s ~dst:u ~cap:1)) left;
      Array.iter (fun v -> ignore (Graph.add_arc g ~src:v ~dst:t ~cap:1)) right;
      for u = 0 to nl - 1 do
        for v = 0 to nr - 1 do
          if Prng.bernoulli rng 0.3 then begin
            Hopcroft_karp.add_edge hk u v;
            ignore (Graph.add_arc g ~src:left.(u) ~dst:right.(v) ~cap:1)
          end
        done
      done;
      let f, _ = Dinic.max_flow g ~source:s ~sink:t in
      Hopcroft_karp.matching_size hk = f)

let hk_matching_valid =
  qtest "matchings use only existing edges, injectively" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let nl = 1 + Prng.int rng 8 and nr = 1 + Prng.int rng 8 in
      let hk = Hopcroft_karp.create ~n_left:nl ~n_right:nr in
      let edges = Hashtbl.create 16 in
      for u = 0 to nl - 1 do
        for v = 0 to nr - 1 do
          if Prng.bernoulli rng 0.4 then begin
            Hopcroft_karp.add_edge hk u v;
            Hashtbl.replace edges (u, v) ()
          end
        done
      done;
      let m = Hopcroft_karp.max_matching hk in
      List.for_all (fun e -> Hashtbl.mem edges e) m
      && List.length (List.sort_uniq compare (List.map fst m)) = List.length m
      && List.length (List.sort_uniq compare (List.map snd m)) = List.length m)

(* --- Warm successive-shortest-paths vs out-of-kilter ------------------------ *)

(* The priority engine's warm path solves each cycle with
   Mincost.augment on a graph already carrying feasible flow. Here the
   warm path is cross-validated against the paper's own solver: push a
   random partial amount from scratch, finish with [augment], and the
   resulting flow must match a full out-of-kilter run of the same
   Transformation-2 instance in total cost, allocation count and
   allocation-set cost (mappings may tie-break differently). *)
let warm_augment_matches_out_of_kilter =
  qtest "partial flow + Mincost.augment = out-of-kilter on T2" ~count:80
    QCheck.small_int (fun seed ->
      let module Workload = Rsin_sim.Workload in
      let module T2 = Rsin_core.Transform2 in
      let rng = Prng.create seed in
      let net =
        if Prng.bool rng then Rsin_topology.Builders.omega 8
        else Rsin_topology.Builders.crossbar ~n_procs:5 ~n_res:6
      in
      ignore (Workload.preoccupy rng net ~circuits:(Prng.int rng 2));
      let reqs, free = Workload.snapshot rng net in
      let busy_p, busy_r = Workload.occupied_endpoints net in
      let reqs = List.filter (fun p -> not (List.mem p busy_p)) reqs in
      let free = List.filter (fun r -> not (List.mem r busy_r)) free in
      let requests = Workload.with_priorities rng ~levels:4 reqs in
      let free = Workload.with_priorities rng ~levels:3 free in
      let requested = List.length requests in
      (* warm instance: partial from-scratch push, then augment *)
      let warm = T2.build net ~requests ~free in
      let g = T2.graph warm in
      let source = T2.source warm and sink = T2.sink warm in
      let partial = Prng.int rng (requested + 1) in
      ignore (Mincost.min_cost_flow g ~source ~sink ~amount:partial);
      let inc = Mincost.augment g ~source ~sink in
      let total_warm = Graph.total_cost g in
      (* a bypassed request flows s→p→bypass→sink; subtract those whole
         paths from the total to get the allocated-set cost *)
      let bypass = T2.bypass_node warm in
      let sp_cost = Hashtbl.create 16 in
      Graph.iter_forward_arcs g (fun a ->
          if Graph.src g a = source then
            Hashtbl.replace sp_cost (Graph.dst g a) (Graph.cost g a));
      let bypassed_warm = ref 0 and bypass_paths_cost = ref 0 in
      Graph.iter_forward_arcs g (fun a ->
          if Graph.dst g a = bypass && Graph.flow g a > 0 then begin
            incr bypassed_warm;
            bypass_paths_cost :=
              !bypass_paths_cost + Graph.cost g a
              + Hashtbl.find sp_cost (Graph.src g a)
          end
          else if Graph.src g a = bypass && Graph.dst g a = sink then
            bypass_paths_cost :=
              !bypass_paths_cost + (Graph.cost g a * Graph.flow g a));
      let allocated_warm = requested - !bypassed_warm in
      let alloc_cost_warm = total_warm - !bypass_paths_cost in
      (* reference: full out-of-kilter solve of a fresh instance *)
      let o = T2.solve ~solver:T2.Out_of_kilter (T2.build net ~requests ~free) in
      Graph.flow_value g ~source = requested
      && partial + inc.Mincost.flow = requested
      && total_warm = o.T2.total_cost
      && allocated_warm = o.T2.allocated
      && alloc_cost_warm = o.T2.allocation_cost)

(* The crossbar MRSIN degenerates to bipartite matching: Transformation 1
   and Hopcroft-Karp must agree on allocation counts. *)
let crossbar_is_matching =
  qtest "crossbar scheduling = bipartite matching" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let np = 2 + Prng.int rng 6 and nr = 2 + Prng.int rng 6 in
      let net = Rsin_topology.Builders.crossbar ~n_procs:np ~n_res:nr in
      let requests =
        List.filter (fun _ -> Prng.bool rng) (List.init np Fun.id)
      in
      let free = List.filter (fun _ -> Prng.bool rng) (List.init nr Fun.id) in
      let o = Rsin_core.Transform1.schedule net ~requests ~free in
      let hk = Hopcroft_karp.create ~n_left:np ~n_right:nr in
      List.iter
        (fun p -> List.iter (fun r -> Hopcroft_karp.add_edge hk p r) free)
        requests;
      o.Rsin_core.Transform1.allocated = Hopcroft_karp.matching_size hk)

let suite =
  [
    Alcotest.test_case "push-relabel known" `Quick test_pr_known;
    Alcotest.test_case "push-relabel returns excess" `Quick test_pr_disconnected;
    pr_equals_dinic;
    pr_leaves_legal_flow;
    ook_with_lower_bounds_matches_lp;
    Alcotest.test_case "hopcroft-karp known" `Quick test_hk_known;
    Alcotest.test_case "hopcroft-karp empty" `Quick test_hk_empty;
    Alcotest.test_case "hopcroft-karp bounds" `Quick test_hk_bounds;
    hk_equals_flow;
    hk_matching_valid;
    warm_augment_matches_out_of_kilter;
    crossbar_is_matching;
  ]
