(* Properties of the shared network->flow compiler (Rsin_core.Netgraph):
   the link<->arc correspondence round-trips, and the graphs the
   refactored Transform1/Transform2 compile through Netgraph are
   arc-for-arc identical to what the pre-refactor per-module builders
   produced (replicated verbatim below from the deleted code), on random
   snapshots of every topology family. *)

module Graph = Rsin_flow.Graph
module Netgraph = Rsin_core.Netgraph
module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Workload = Rsin_sim.Workload
module T1 = Rsin_core.Transform1
module T2 = Rsin_core.Transform2
module Prng = Rsin_util.Prng

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let topologies =
  [ ("omega", fun () -> Builders.omega 8);
    ("butterfly", fun () -> Builders.butterfly 8);
    ("benes", fun () -> Builders.benes 8);
    ("clos", fun () -> Builders.clos ~m:3 ~n:2 ~r:4);
    ("crossbar", fun () -> Builders.crossbar ~n_procs:6 ~n_res:6);
    ("delta", fun () -> Builders.delta ~radix:2 ~stages:3);
    ("extra_stage", fun () -> Builders.extra_stage_omega 8 ~extra:1) ]

(* A random scenario: a partially occupied network plus request/free
   subsets, exercising all of step T4's drop rules. *)
let scenario seed (name, build) =
  let rng = Prng.create (Hashtbl.hash (name, seed)) in
  let net = build () in
  ignore (Workload.preoccupy rng net ~circuits:(Prng.int rng 3));
  let requests, free = Workload.snapshot rng net in
  let busy_p, busy_r = Workload.occupied_endpoints net in
  let requests = List.filter (fun p -> not (List.mem p busy_p)) requests in
  let free = List.filter (fun r -> not (List.mem r busy_r)) free in
  (rng, net, requests, free)

(* --- pre-refactor builders, replicated verbatim ------------------------- *)

(* Transform1.build as it existed before the Netgraph refactor. *)
let old_t1_build net ~requests ~free =
  let np = Network.n_procs net and nr = Network.n_res net in
  let requests = List.sort_uniq compare requests
  and free = List.sort_uniq compare free in
  let g = Graph.create () in
  let source = Graph.add_node g and sink = Graph.add_node g in
  let procs = Array.make np (-1) and ress = Array.make nr (-1) in
  let boxes = Array.init (Network.n_boxes net) (fun _ -> Graph.add_node g) in
  List.iter (fun p -> procs.(p) <- Graph.add_node g) requests;
  List.iter (fun r -> ress.(r) <- Graph.add_node g) free;
  List.iter
    (fun p -> ignore (Graph.add_arc g ~src:source ~dst:procs.(p) ~cap:1))
    requests;
  List.iter
    (fun r -> ignore (Graph.add_arc g ~src:ress.(r) ~dst:sink ~cap:1))
    free;
  for l = 0 to Network.n_links net - 1 do
    if Network.link_state net l = Network.Free then begin
      let node_of = function
        | Network.Proc p -> if procs.(p) >= 0 then Some procs.(p) else None
        | Network.Res r -> if ress.(r) >= 0 then Some ress.(r) else None
        | Network.Box_in (b, _) | Network.Box_out (b, _) -> Some boxes.(b)
      in
      match
        (node_of (Network.link_src net l), node_of (Network.link_dst net l))
      with
      | Some u, Some v -> ignore (Graph.add_arc g ~src:u ~dst:v ~cap:1)
      | _ -> ()
    end
  done;
  g

(* Transform2.build as it existed before the Netgraph refactor. *)
let old_t2_build net ~requests ~free =
  let np = Network.n_procs net and nr = Network.n_res net in
  let ymax = List.fold_left (fun m (_, y) -> max m y) 0 requests in
  let qmax = List.fold_left (fun m (_, q) -> max m q) 0 free in
  let bypass_cost = max (ymax + 1) (qmax + 1) in
  let g = Graph.create () in
  let source = Graph.add_node g and sink = Graph.add_node g in
  let bypass = Graph.add_node g in
  let procs = Array.make np (-1) and ress = Array.make nr (-1) in
  let boxes = Array.init (Network.n_boxes net) (fun _ -> Graph.add_node g) in
  List.iter (fun (p, _) -> procs.(p) <- Graph.add_node g) requests;
  List.iter (fun (r, _) -> ress.(r) <- Graph.add_node g) free;
  List.iter
    (fun (p, y) ->
      ignore (Graph.add_arc g ~cost:(ymax - y) ~src:source ~dst:procs.(p) ~cap:1);
      ignore (Graph.add_arc g ~cost:bypass_cost ~src:procs.(p) ~dst:bypass ~cap:1))
    requests;
  ignore
    (Graph.add_arc g ~cost:bypass_cost ~src:bypass ~dst:sink
       ~cap:(List.length requests));
  List.iter
    (fun (r, q) ->
      ignore (Graph.add_arc g ~cost:(qmax - q) ~src:ress.(r) ~dst:sink ~cap:1))
    free;
  for l = 0 to Network.n_links net - 1 do
    if Network.link_state net l = Network.Free then begin
      let node_of = function
        | Network.Proc p -> if procs.(p) >= 0 then Some procs.(p) else None
        | Network.Res r -> if ress.(r) >= 0 then Some ress.(r) else None
        | Network.Box_in (b, _) | Network.Box_out (b, _) -> Some boxes.(b)
      in
      match
        (node_of (Network.link_src net l), node_of (Network.link_dst net l))
      with
      | Some u, Some v -> ignore (Graph.add_arc g ~src:u ~dst:v ~cap:1)
      | _ -> ()
    end
  done;
  g

let graphs_equal a b =
  Graph.node_count a = Graph.node_count b
  && Graph.arc_count a = Graph.arc_count b
  &&
  let ok = ref true in
  Graph.iter_forward_arcs a (fun arc ->
      if
        Graph.src a arc <> Graph.src b arc
        || Graph.dst a arc <> Graph.dst b arc
        || Graph.original_capacity a arc <> Graph.original_capacity b arc
        || Graph.cost a arc <> Graph.cost b arc
      then ok := false);
  !ok

(* --- properties --------------------------------------------------------- *)

let test_roundtrip =
  qtest "link<->arc map round-trips on every topology" ~count:60
    QCheck.small_int (fun seed ->
      List.for_all
        (fun topo ->
          let _rng, net, requests, free = scenario seed topo in
          let ng =
            Netgraph.compile net
              ~requests:(List.map (fun p -> (p, 0)) requests)
              ~free:(List.map (fun r -> (r, 0)) free)
          in
          (* Every compiled link arc round-trips both ways... *)
          Array.for_all
            (fun (a, l) ->
              Netgraph.arc_of_link ng l = Some a
              && Netgraph.link_of_arc ng a = Some l)
            (Netgraph.link_arcs ng)
          (* ...and every link either round-trips or was dropped. *)
          && List.for_all
               (fun l ->
                 match Netgraph.arc_of_link ng l with
                 | Some a -> Netgraph.link_of_arc ng a = Some l
                 | None ->
                   Network.link_state net l <> Network.Free
                   || (match Network.link_src net l with
                      | Network.Proc p -> not (List.mem p requests)
                      | Network.Res r -> not (List.mem r free)
                      | _ -> false)
                   || (match Network.link_dst net l with
                      | Network.Proc p -> not (List.mem p requests)
                      | Network.Res r -> not (List.mem r free)
                      | _ -> false))
               (List.init (Network.n_links net) Fun.id))
        topologies)

let test_t1_matches_prerefactor =
  qtest "Transform1 graphs match the pre-refactor builder arc-for-arc"
    ~count:60 QCheck.small_int (fun seed ->
      List.for_all
        (fun topo ->
          let _rng, net, requests, free = scenario seed topo in
          let tr = T1.build net ~requests ~free in
          graphs_equal (T1.graph tr) (old_t1_build net ~requests ~free))
        topologies)

let test_t2_matches_prerefactor =
  qtest "Transform2 graphs match the pre-refactor builder arc-for-arc"
    ~count:60 QCheck.small_int (fun seed ->
      List.for_all
        (fun topo ->
          let rng, net, requests, free = scenario seed topo in
          let requests = Workload.with_priorities rng ~levels:4 requests in
          let free = Workload.with_priorities rng ~levels:3 free in
          let tr = T2.build net ~requests ~free in
          graphs_equal (T2.graph tr) (old_t2_build net ~requests ~free))
        topologies)

let test_full_compile_covers_everything () =
  List.iter
    (fun (name, build) ->
      let net = build () in
      let ng = Netgraph.compile_full net in
      let g = Netgraph.graph ng in
      Alcotest.(check int)
        (name ^ ": every link compiled")
        (Network.n_links net)
        (Array.length (Netgraph.link_arcs ng));
      Alcotest.(check int)
        (name ^ ": node per endpoint, box, source and sink")
        (2 + Network.n_boxes net + Network.n_procs net + Network.n_res net)
        (Graph.node_count g);
      for p = 0 to Network.n_procs net - 1 do
        match Netgraph.sp_arc ng p with
        | Some a ->
          Alcotest.(check int) (name ^ ": sp arc starts off") 0
            (Graph.original_capacity g a)
        | None -> Alcotest.fail (name ^ ": missing sp arc")
      done)
    topologies

let suite =
  [
    test_roundtrip;
    test_t1_matches_prerefactor;
    test_t2_matches_prerefactor;
    Alcotest.test_case "compile_full covers the whole topology" `Quick
      test_full_compile_covers_everything;
  ]
