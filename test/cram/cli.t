The CLI describes networks:

  $ rsin info omega:8
  omega8: 8 procs, 8 resources, 3 stages, 12 boxes, 32 links
  full access: true
  stage 0: 4 boxes of 2x2
  stage 1: 4 boxes of 2x2
  stage 2: 4 boxes of 2x2

Structural properties of a multipath network:

  $ rsin props benes:8
  benes8: 8 procs, 8 resources, 5 stages, 20 boxes, 48 links
  metric                 value
  ---------------------  -----
  path length (links)    6
  paths per pair (mean)  4.00
  paths per pair (min)   4
  bisection flow         8
  $ rsin props clos:3,2,4 | tail -2
  paths per pair (min)   3
  bisection flow         8

Scheduling a snapshot is deterministic:

  $ rsin schedule omega-paper:8 --requests 0,2,4 --free 1,3,5
  requests: 0,2,4
  free:     1,3,5
  allocated 3/3:
    p0 -> r1
    p2 -> r3
    p4 -> r5

The distributed token trace shows the Table I phases (p1 and p2 share a
first-stage box while r7 and r8 share a last-stage box; the unique
middle link can carry only one circuit - a genuine MIN blocking - so
1/2 is in fact optimal here):

  $ rsin trace omega-paper:8 --requests 0,1 --free 6,7 | head -3
  allocated 1/2 in 1 iteration(s), 13 clock periods
  
  clk   0  1110000  E1 request pending, E2 resource ready, E3 request token propagation

Asymmetric concentrators parse and report:

  $ rsin info delta-ab:4x2^2
  delta4x2^2: 16 procs, 4 resources, 2 stages, 6 boxes, 28 links
  full access: true
  stage 0: 4 boxes of 4x2
  stage 1: 2 boxes of 4x2

Benes permutation routing:

  $ rsin perm 4 --perm 3,2,1,0
  p0   -> r3   via 4 links
  p1   -> r2   via 4 links
  p2   -> r1   via 4 links
  p3   -> r0   via 4 links
  all 4 circuits established link-disjointly on benes4

Gate-level compilation:

  $ rsin gates omega-paper:8 --requests 0,2 --free 5,6 | head -1
  compiled netlist: 16 inputs, 366 flip-flops, 4523 gates, depth 38

Errors are reported through cmdliner:

  $ rsin info omega:7
  rsin: NET argument: omega7: size must be a power of two >= 2
  Usage: rsin info [OPTION]… NET
  Try 'rsin info --help' or 'rsin --help' for more information.
  [124]

The optimal scheduler can explain blockage via the min cut:

  $ rsin schedule omega-paper:8 --requests 0,1 --free 6,7 --explain
  requests: 0,1
  free:     6,7
  bottleneck (min cut, 1 elements):
    link 9: b0:o1 -> b5:i0
  allocated 1/2:
    p0 -> r6

Occupancy map after scheduling:

  $ rsin show omega-paper:8 --requests 0,2,4 --free 1,3,5
  omega8-paper: 3 circuits live
  procs: #.#.#...
  stage 0: [#.|#.] [#.|#.] [#.|.#] [..|..]
  stage 1: [#.|#.] [.#|#.] [#.|.#] [..|..]
  stage 2: [#.|.#] [.#|.#] [#.|.#] [..|..]
  res:   .#.#.#..

Recording a trace exports the Chrome trace_event format (an array of
name/ph/ts/pid/tid events loadable in chrome://tracing):

  $ rsin schedule omega:8 --requests 0,2,4 --free 1,3,5 --trace-out t.json --trace-format chrome
  requests: 0,2,4
  free:     1,3,5
  allocated 3/3:
    p0 -> r1
    p2 -> r3
    p4 -> r5
  trace: 2 event(s) -> t.json
  $ cat t.json
  [
  {"name":"dinic.phase","ph":"B","ts":0,"pid":1,"tid":0,"args":{"phase":1,"layers":7}},
  {"name":"dinic.phase","ph":"E","ts":39,"pid":1,"tid":0,"args":{"flow_added":3}}
  ]

The metrics registry reports the solver cost counters of both
architectures over the same snapshot:

  $ rsin metrics omega:8 --requests 0,2,4 --free 1,3,5
  requests: 0,2,4
  free:     1,3,5
  optimal allocated 3/3; distributed allocated 3/3 in 9 clock periods
  metric                         kind     value
  -----------------------------  -------  -----
  flow.dinic.arcs_scanned        counter  39
  flow.dinic.augmentations       counter  3
  flow.dinic.phases              counter  1
  flow.dinic.runs                counter  1
  token_sim.allocated            counter  3
  token_sim.iterations           counter  1
  token_sim.registration_clocks  counter  1
  token_sim.request_clocks       counter  4
  token_sim.requested            counter  3
  token_sim.resource_clocks      counter  4
  token_sim.runs                 counter  1
  token_sim.total_clocks         counter  9
  transform1.allocated           counter  3
  transform1.blocked             counter  0
  transform1.solves              counter  1

The registry's CSR pair serves the same snapshot on the flat
zero-allocation core — identical allocation, its own work counters:

  $ rsin schedule omega:8 --requests 0,2,4 --free 1,3,5 --solver dinic-csr
  requests: 0,2,4
  free:     1,3,5
  allocated 3/3:
    p0 -> r1
    p2 -> r3
    p4 -> r5
  $ rsin metrics omega:8 --requests 0,2,4 --free 1,3,5 --solver dinic-csr
  requests: 0,2,4
  free:     1,3,5
  optimal allocated 3/3; distributed allocated 3/3 in 9 clock periods
  metric                         kind     value
  -----------------------------  -------  -----
  flow.dinic_csr.arcs_scanned    counter  39
  flow.dinic_csr.augmentations   counter  3
  flow.dinic_csr.phases          counter  1
  flow.dinic_csr.runs            counter  1
  token_sim.allocated            counter  3
  token_sim.iterations           counter  1
  token_sim.registration_clocks  counter  1
  token_sim.request_clocks       counter  4
  token_sim.requested            counter  3
  token_sim.resource_clocks      counter  4
  token_sim.runs                 counter  1
  token_sim.total_clocks         counter  9
  transform1.allocated           counter  3
  transform1.blocked             counter  0
  transform1.solves              counter  1

An unknown solver is rejected with the full registry listing, CSR
names included:

  $ rsin schedule omega:8 --requests 0 --free 1 --solver bogus
  rsin: option '--solver': invalid value 'bogus', expected one of 'dinic',
        'edmonds-karp', 'push-relabel', 'mincost', 'out-of-kilter', 'dinic-csr'
        or 'mincost-csr'
  Usage: rsin schedule [OPTION]… NET
  Try 'rsin schedule --help' or 'rsin --help' for more information.
  [124]
