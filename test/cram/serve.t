The serve subcommand reuses the replay flag bundle verbatim — this help
text is pinned so the shared options cannot drift between the two:

  $ rsin serve --help=plain
  NAME
         rsin-serve - Serve a live JSONL event stream (stdin, file or Unix
         socket) through the sharded multicore engine: one warm engine per
         network component, spread over an OCaml domain pool, with cross-shard
         borrowing when a shard's resource pool is exhausted. Malformed lines
         and rejected events are dropped with a positioned error instead of
         taking the server down; --guard adds overload and fault hardening, and
         --checkpoint-every/--restore give crash recovery.
  
  SYNOPSIS
         rsin serve [OPTION]… NET
  
  ARGUMENTS
         NET (required)
             Network specification, e.g. omega:8.
  
  OPTIONS
         --arrival=VAL (absent=0.2)
             Synthetic trace: per-processor arrival probability per slot.
  
         --cancel=VAL (absent=0.)
             Synthetic trace: cancellation probability.
  
         --checkpoint-every=SLOTS
             Write a checkpoint (atomically, via a temp file and rename) every
             SLOTS served slots; must be > 0. A checkpoint lands on a slot
             boundary and captures the full serving state — restarting from
             it with --restore reproduces the uninterrupted run exactly.
  
         --checkpoint-file=FILE (absent=rsin.ckpt)
             Where --checkpoint-every writes (default rsin.ckpt).
  
         --deadline-slack=K
             Synthetic trace: deadline uniform in [t+1, t+K].
  
         --discipline=DISC (absent=uniform)
             Serving discipline: uniform (Transformation 1: any maximum
             allocation per cycle) or priority (Transformation 2: maximum
             allocation, then maximum total priority of the queue heads served;
             priorities come from the trace).
  
         --domains=N
             Size of the domain pool serving the shards (default: the machine's
             recommended domain count). The shard layout — and with it the
             allocation trajectory — does not depend on it.
  
         --fault-clock-granularity=G (absent=slot)
             With --faults: slot (default) applies each fault at its slot's
             cycle boundary; clock additionally draws a uniform intra-cycle
             status-bus clock per fault, so under --mode token the element dies
             mid-cycle and the distributed protocol must detect it and recover.
             Other modes ignore the clocks.
  
         --faults
             Inject a random fault/repair schedule (seeded MTBF/MTTR renewal
             process over links, boxes and resource ports) into the served
             trace. A fault tears down circuits transmitting through the dead
             element and re-queues their tasks at the head of their queue.
  
         --flap-k=K (absent=3)
             With --guard: faults within --flap-window slots that quarantine an
             element (0 disables quarantine).
  
         --flap-window=SLOTS (absent=50)
             With --guard: sliding fault-counting window.
  
         --guard
             Enable the robustness guard layer: admission control (bounded
             pending queues, see --queue-bound and --shed-policy),
             capped-exponential backoff re-admission of fault victims with a
             per-task retry budget (--retry-budget), and flap-detecting element
             quarantine (--flap-k, --flap-window, --quarantine-slots). Off by
             default: without it the engine behaves exactly as before the guard
             layer existed.
  
         --heartbeat=N (absent=0)
             Every N consumed trace events, print one progress line (slot,
             events, cycles, allocated, solver work) to stderr. 0 (the default)
             disables the heartbeat.
  
         --listen=PATH
             Create a Unix domain socket at PATH, accept one connection and
             stream JSONL trace events from it until the client closes.
  
         --max-defer=VAL (absent=16)
             Force a cycle once the oldest pending request is this old.
  
         --mtbf=SLOTS (absent=80)
             Mean slots between failures per element (with --faults); must be >
             0.
  
         --mttr=SLOTS (absent=20)
             Mean slots to repair a failed element (with --faults); must be >
             0.
  
         --priority-levels=K (absent=0)
             Synthetic trace: draw each task's priority uniformly from [1, K]
             (0, the default, leaves all priorities 0).
  
         --quarantine-slots=SLOTS (absent=100)
             With --guard: cooling-off period of a quarantined element
             (excluded from allocation even while nominally up).
  
         --queue-bound=N (absent=64)
             With --guard: max pending tasks per processor queue before
             admission control sheds (0 = unbounded).
  
         --restore=FILE
             Resume serving from the checkpoint in FILE instead of starting
             fresh; the engine config travels inside the checkpoint, and NET
             must be the topology it was taken on. Feed the remaining trace
             (slots after the checkpoint).
  
         --retry-budget=N (absent=8)
             With --guard: teardowns a task survives before the engine gives it
             up (0 = give up on first victimization).
  
         --seed=VAL (absent=1)
             PRNG seed.
  
         --service=VAL (absent=4.)
             Synthetic trace: mean service time.
  
         --shed-policy=POLICY (absent=drop-tail)
             With --guard: what a full queue sheds — drop-tail (the newcomer)
             or deadline-aware (the pending task with least remaining deadline
             slack, the one most likely to expire anyway).
  
         --slots=VAL (absent=200)
             Synthetic trace: arrival slots.
  
         --solver=NAME (absent=dinic)
             Max-flow solver for the optimal (flow-based) scheduling paths:
             dinic, edmonds-karp, push-relabel, mincost, out-of-kilter,
             dinic-csr, mincost-csr. Schedulers that do not run a flow solver
             ignore it. The warm engine's incremental augmentation is part of
             its definition, but dinic-csr and mincost-csr select where it
             runs: warm cycles then execute on the flat zero-allocation CSR
             core instead of the adjacency graph.
  
         --synthetic
             Synthesize the workload from the shared workload flags (--slots,
             --arrival, ...) instead of streaming one — the scaling-bench
             driver.
  
         --threshold=VAL (absent=1)
             Pending requests to batch before entering a scheduling cycle.
  
         --timing
             Also report wall-clock time and events/second (off by default so
             serve output stays reproducible).
  
         --trace=FILE
             Stream the JSONL workload trace in FILE line at a time (replay
             traces double as load-test drivers).
  
         --trace-format=FMT (absent=jsonl)
             Trace file format: jsonl (one JSON event per line) or chrome
             (trace_event array for chrome://tracing / Perfetto).
  
         --trace-out=FILE
             Record a trace of the run and write it to FILE.
  
         --transmission=VAL (absent=1)
             Slots a circuit stays established.
  
  COMMON OPTIONS
         --help[=FMT] (default=auto)
             Show this help in format FMT. The value FMT must be one of auto,
             pager, groff or plain. With auto, the format is pager or plain
             whenever the TERM env var is dumb or undefined.
  
         --version
             Show version information.
  
  EXIT STATUS
         rsin serve exits with:
  
         0   on success.
  
         123 on indiscriminate errors reported on standard error.
  
         124 on command line parsing errors.
  
         125 on unexpected internal errors (bugs).
  
  SEE ALSO
         rsin(1)
  

A replay-exported trace doubles as a serve load: stream it from a file
and from stdin; both must produce the same report, and the report must
be identical at every --domains value (the shard layout does not depend
on the pool size):

  $ rsin replay multi:2:omega:8 --slots 30 --arrival 0.3 --seed 7 --export trace.jsonl > /dev/null
  $ rsin serve multi:2:omega:8 --domains 2 --trace trace.jsonl
  serving multi2-omega8: 2 shard(s) over 2 domain(s)
  metric                serve
  --------------------  -----
  events                150
  borrowed              12
  starved               103
  horizon (slots)       55
  arrivals              150
  allocated             150
  completed             150
  cancelled             0
  expired               0
  left pending          0
  scheduling cycles     79
  cycles skipped clean  0
  solver work (arcs)    7050
  $ rsin serve multi:2:omega:8 --domains 1 < trace.jsonl
  serving multi2-omega8: 2 shard(s) over 1 domain(s)
  metric                serve
  --------------------  -----
  events                150
  borrowed              12
  starved               103
  horizon (slots)       55
  arrivals              150
  allocated             150
  completed             150
  cancelled             0
  expired               0
  left pending          0
  scheduling cycles     79
  cycles skipped clean  0
  solver work (arcs)    7050

Synthetic workloads come from the same shared flags as replay, fault
injection included:

  $ rsin serve multi:4:omega:8 --synthetic --slots 40 --arrival 0.3 --seed 5 --faults --mtbf 40 --mttr 6 --domains 4
  serving multi4-omega8: 4 shard(s) over 4 domain(s)
  faults: 205 element event(s) injected (mtbf 40, mttr 6)
  metric                serve
  --------------------  -----
  events                575
  borrowed              38
  starved               113
  horizon (slots)       87
  arrivals              370
  allocated             368
  completed             368
  cancelled             0
  expired               0
  left pending          2
  scheduling cycles     283
  cycles skipped clean  1
  solver work (arcs)    18332
  faults applied        111
  repairs applied       94
  victim circuits       0

A connected network is a single shard — serve degrades gracefully to
the single-core engine:

  $ rsin serve omega:8 --synthetic --slots 20 --arrival 0.2 --seed 3 --domains 4
  serving omega8: 1 shard(s) over 1 domain(s)
  metric                serve
  --------------------  -----
  events                32
  borrowed              0
  starved               19
  horizon (slots)       32
  arrivals              32
  allocated             32
  completed             32
  cancelled             0
  expired               0
  left pending          0
  scheduling cycles     19
  cycles skipped clean  0
  solver work (arcs)    1362

Bad flag combinations are rejected with a diagnostic, not a traceback,
and --mtbf/--mttr/--checkpoint-every validate strictly positive at the
flag layer, before any network is built:

  $ rsin serve multi:2:omega:4 --trace trace.jsonl --listen sock.path
  rsin: --trace and --listen are mutually exclusive
  [1]
  $ rsin serve multi:2:omega:4 --faults
  rsin: --faults needs --synthetic (streamed traces carry their fault events inline)
  [1]
  $ rsin serve multi:2:omega:4 --synthetic --faults --mtbf 0 2>&1 | head -2
  rsin: option '--mtbf': value 0 must be > 0
  Usage: rsin serve [OPTION]… NET
  $ rsin serve multi:2:omega:4 --synthetic --faults --mttr=-3.5 2>&1 | head -2
  rsin: option '--mttr': value -3.5 must be > 0
  Usage: rsin serve [OPTION]… NET
  $ rsin serve multi:2:omega:4 --synthetic --checkpoint-every 0 2>&1 | head -2
  rsin: option '--checkpoint-every': value 0 must be > 0
  Usage: rsin serve [OPTION]… NET
  $ rsin serve multi:2:omega:4 --synthetic --checkpoint-every nope 2>&1 | head -2
  rsin: option '--checkpoint-every': invalid value 'nope', expected an integer
  Usage: rsin serve [OPTION]… NET

Malformed stream input never takes the server down: bad lines are
dropped with their line number, later events keep being served, and the
report counts the drops:

  $ echo 'not json' | rsin serve multi:2:omega:4 --domains 1
  rsin: trace line 1: expected a {...} object (line dropped)
  serving multi2-omega4: 2 shard(s) over 1 domain(s)
  metric                 serve
  ---------------------  -----
  events                 0
  borrowed               0
  starved                0
  horizon (slots)        0
  arrivals               0
  allocated              0
  completed              0
  cancelled              0
  expired                0
  left pending           0
  scheduling cycles      0
  cycles skipped clean   0
  solver work (arcs)     0
  stream errors dropped  1
  $ printf '{"t":5,"ev":"arrive","id":0,"proc":0,"service":2}\n{"t":4,"ev":"arrive","id":1,"proc":1,"service":2}\n' | rsin serve multi:2:omega:4 --domains 1
  rsin: event dropped: Serve.feed: events must arrive in nondecreasing slot order
  serving multi2-omega4: 2 shard(s) over 1 domain(s)
  metric                 serve
  ---------------------  -----
  events                 1
  borrowed               0
  starved                0
  horizon (slots)        8
  arrivals               1
  allocated              1
  completed              1
  cancelled              0
  expired                0
  left pending           0
  scheduling cycles      1
  cycles skipped clean   0
  solver work (arcs)     19
  stream errors dropped  1
