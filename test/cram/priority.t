Under the priority discipline each cycle is a Transformation-2
min-cost flow: maximum allocation first, maximum total queue-head
priority second. Warm runs it as one augmentation over the persistent
graph with priorities riding on the source-arc costs; rebuild runs
Transformation 2 from scratch every cycle. Per cycle both modes reach
the same objective (the differential test pins that), but optimal
mappings tie-break differently, so the two whole-run trajectories —
and their allocation order, waits and cycle counts — may diverge:

  $ rsin replay omega:8 --discipline priority --priority-levels 4 --slots 40 --arrival 0.3 --seed 7 --export ptrace.jsonl
  exported 96 event(s) -> ptrace.jsonl
  discipline: priority
  metric                   warm    rebuild
  -----------------------  ------  -------
  horizon (slots)          67      72
  arrivals                 96      96
  allocated                96      96
  completed                96      96
  cancelled                0       0
  expired                  0       0
  left pending             0       0
  mean wait (slots)        9.281   10.083
  max wait (slots)         36      37
  throughput (tasks/slot)  1.433   1.333
  resource utilization     88.99%  82.81%
  scheduling cycles        51      59
  cycles skipped clean     0       0
  solver work (arcs)       11744   23259
  warm start saves 49.51% of rebuild solver work

Prioritized traces carry the priority per arrival in the JSONL form:

  $ head -3 ptrace.jsonl
  {"t":0,"ev":"arrive","id":0,"proc":2,"service":2,"priority":3}
  {"t":1,"ev":"arrive","id":1,"proc":0,"service":2,"priority":2}
  {"t":1,"ev":"arrive","id":2,"proc":3,"service":2,"priority":1}

and replaying the recorded trace reproduces the run exactly:

  $ rsin replay omega:8 --trace ptrace.jsonl --discipline priority --mode warm
  discipline: priority
  metric                   warm
  -----------------------  ------
  horizon (slots)          67
  arrivals                 96
  allocated                96
  completed                96
  cancelled                0
  expired                  0
  left pending             0
  mean wait (slots)        9.281
  max wait (slots)         36
  throughput (tasks/slot)  1.433
  resource utilization     88.99%
  scheduling cycles        51
  cycles skipped clean     0
  solver work (arcs)       11744

The priority field is omitted when 0, so priority-free traces keep the
original on-disk format byte for byte — and an old trace replays fine
under the priority discipline (all priorities 0: allocation count is
still maximized every cycle):

  $ rsin replay omega:8 --slots 40 --arrival 0.3 --seed 7 --export plain.jsonl --mode warm | head -1
  exported 96 event(s) -> plain.jsonl
  $ grep -c priority plain.jsonl
  0
  [1]
  $ rsin replay omega:8 --trace plain.jsonl --discipline priority --mode warm | grep -E 'discipline|allocated'
  discipline: priority
  allocated                96

Negative priorities are rejected with the offending line:

  $ echo '{"t":0,"ev":"arrive","id":0,"proc":1,"service":1,"priority":-2}' > bad.jsonl
  $ rsin replay omega:8 --trace bad.jsonl
  rsin: cannot read trace: Workload.trace_of_jsonl: line 1: field "priority" must be >= 0
  [1]
