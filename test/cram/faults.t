With --faults the replay engine injects a seeded MTBF/MTTR fault and
repair schedule over the network's links, boxes and resource ports. A
fault on an element carrying a transmitting circuit tears the circuit
down and re-admits its task at the head of its queue; scheduling keeps
allocating the maximum on the surviving subnetwork. Warm applies each
fault as an O(1) capacity delta on the persistent graph, rebuild
recompiles the degraded network every cycle — both serve the same
trace identically while warm does less solver work:

  $ rsin replay omega:8 --slots 40 --arrival 0.3 --seed 7 --faults --mtbf 60 --mttr 15 --export ftrace.jsonl
  faults: 33 element event(s) injected (mtbf 60, mttr 15)
  exported 129 event(s) -> ftrace.jsonl
  metric                   warm    rebuild
  -----------------------  ------  -------
  horizon (slots)          98      98
  arrivals                 96      96
  allocated                95      95
  completed                90      90
  cancelled                0       0
  expired                  0       0
  left pending             6       6
  mean wait (slots)        16.453  16.453
  max wait (slots)         56      56
  throughput (tasks/slot)  0.918   0.918
  resource utilization     57.14%  57.14%
  scheduling cycles        84      84
  cycles skipped clean     0       0
  solver work (arcs)       4650    7888
  faults applied           19      19
  repairs applied          14      14
  victim circuits          5       5
  mean re-admission wait   6.600   6.600
  warm start saves 41.05% of rebuild solver work

Fault and repair events ride in the same JSONL trace as the workload
(they only appear in traces that contain them, so fault-free traces
keep the original format byte for byte):

  $ grep -c '"ev":"fault"\|"ev":"repair"' ftrace.jsonl
  33
  $ grep '"ev":"fault"' ftrace.jsonl | head -1
  {"t":1,"ev":"fault","kind":"link","idx":0}
  $ grep '"ev":"repair"' ftrace.jsonl | head -1
  {"t":8,"ev":"repair","kind":"link","idx":7}

Replaying the exported trace reproduces the degraded run exactly, fault
report lines included:

  $ rsin replay omega:8 --trace ftrace.jsonl --mode rebuild
  metric                   rebuild
  -----------------------  -------
  horizon (slots)          98
  arrivals                 96
  allocated                95
  completed                90
  cancelled                0
  expired                  0
  left pending             6
  mean wait (slots)        16.453
  max wait (slots)         56
  throughput (tasks/slot)  0.918
  resource utilization     57.14%
  scheduling cycles        84
  cycles skipped clean     0
  solver work (arcs)       7888
  faults applied           19
  repairs applied          14
  victim circuits          5
  mean re-admission wait   6.600
