The saturate subcommand sweeps offered load over the buffered VOQ
packet fabric and prints one point per load. Below saturation the
delivered throughput tracks the offered load; past the knee the curve
flattens at the arbiter's ceiling:

  $ rsin saturate omega:8 --loads 0.2,0.6,1.0 --slots 200 --seed 9 --arbiter islip --vq-depth 4
  saturation: net=omega8 arbiter=islip vq-depth=4 flits=1 slots=200
  load  offered  delivered  dropped  accepted  throughput  mean_delay  p95_delay  max_delay  conflicts  in_flight
  ----  -------  ---------  -------  --------  ----------  ----------  ---------  ---------  ---------  ---------
  0.20      333        333        0    0.2081      0.2100        4.26       7.00          7         65          0
  0.60      933        933        0    0.5831      0.5837        5.81      15.00         15        501          0
  1.00     1600       1600        0    0.8156      0.8094       42.35      96.00         96        680          0

The naive round-robin arbiter saturates lower on the same seed — its
box-wide pointers stay synchronized under symmetric load, repeating
the same conflicts cycle after cycle, where iSLIP's per-port pointers
desynchronize (E33):

  $ rsin saturate omega:8 --loads 0.2,0.6,1.0 --slots 200 --seed 9 --arbiter rr --vq-depth 4
  saturation: net=omega8 arbiter=rr vq-depth=4 flits=1 slots=200
  load  offered  delivered  dropped  accepted  throughput  mean_delay  p95_delay  max_delay  conflicts  in_flight
  ----  -------  ---------  -------  --------  ----------  ----------  ---------  ---------  ---------  ---------
  0.20      333        333        0    0.2081      0.2100        4.28       7.00          7         65          0
  0.60      933        933        0    0.5831      0.5831        5.86      16.00         16        519          0
  1.00     1600       1600        0    0.7512      0.7512       54.75     123.00        123        768          0

--json writes the machine-readable document for downstream plotting;
its shape (meta block + one object per point) is pinned here:

  $ rsin saturate omega:8 --loads 0.2,1.0 --slots 200 --seed 9 --arbiter islip --vq-depth 4 --json sat.json
  saturation: net=omega8 arbiter=islip vq-depth=4 flits=1 slots=200
  load  offered  delivered  dropped  accepted  throughput  mean_delay  p95_delay  max_delay  conflicts  in_flight
  ----  -------  ---------  -------  --------  ----------  ----------  ---------  ---------  ---------  ---------
  0.20      333        333        0    0.2081      0.2100        4.26       7.00          7         65          0
  1.00     1600       1600        0    0.7744      0.7656       49.77     104.00        104        679          0
  json: 2 point(s) -> sat.json
  $ tr ',' '\n' < sat.json | head -8
  {"meta":{"net":"omega8"
  "arbiter":"islip"
  "vq_depth":4
  "flits":1
  "slots":200
  "seed":9}
  "points":[{"load":0.20000000000000001
  "offered_tasks":333

The replay subcommand's packet mode serves a workload with the
paper's Section-II packet semantics: every task binds a concrete
resource before injection (address mapping) and the resource idles
until the last flit arrives — reserved utilization far above serving:

  $ rsin replay omega:8 --mode packet --slots 30 --arrival 0.3 --seed 7 --arbiter islip --vq-depth 4 --flits 3
  packet fabric: arbiter=islip vq-depth=4 flits=3
  metric                   packet
  -----------------------  ------
  horizon (slots)          98
  arrivals                 76
  bound                    76
  completed                76
  dropped                  0
  left pending             0
  mean response (slots)    35.526
  p95 response (slots)     73.000
  max response (slots)     73
  throughput (tasks/slot)  0.776
  serving utilization      37.24%
  reserved utilization     90.05%
  reserved idle            52.81%
  arbiter grants           684
  arbiter conflicts        27
  flits injected           228
  flits delivered          228
  flits dropped            0

Bad arguments fail fast, and the arbiter enum comes straight from the
registry:

  $ rsin saturate omega:8 --loads 0.2,1.5
  rsin: every load must be in [0, 1]
  [1]
  $ rsin saturate omega:8 --vq-depth 0
  rsin: --vq-depth must be >= 1
  [1]
  $ rsin saturate omega:8 --arbiter xbar 2>&1 | head -2
  rsin: option '--arbiter': invalid value 'xbar', expected either 'rr' or
        'islip'
