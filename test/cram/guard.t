The robustness guard layer and crash recovery, end to end through the
CLI. Everything here is seeded, so the pinned numbers are exact.

Admission control: a tight queue bound on an overloaded arrival stream
sheds deterministically, and the report grows guard rows (absent when
the guard is off, keeping legacy output byte-identical):

  $ rsin serve omega:8 --synthetic --slots 40 --arrival 0.9 --deadline-slack 6 \
  >   --guard --queue-bound 2 --shed-policy deadline-aware --domains 1 --seed 7
  serving omega8: 1 shard(s) over 1 domain(s)
  metric                serve
  --------------------  -----
  events                288
  borrowed              0
  starved               280
  horizon (slots)       48
  arrivals              288
  allocated             68
  completed             68
  cancelled             0
  expired               67
  left pending          0
  scheduling cycles     35
  cycles skipped clean  0
  solver work (arcs)    3715
  shed (admission)      153
  given up (budget)     0
  backoff retries       0
  quarantines           0

Flap quarantine: with an aggressive detector under a fault storm,
flapping elements are pulled from allocation for a cooling-off period:

  $ rsin serve omega:8 --synthetic --slots 60 --arrival 0.5 --faults --mtbf 12 \
  >   --mttr 4 --guard --flap-k 1 --flap-window 10 --quarantine-slots 15 \
  >   --domains 1 --seed 3
  serving omega8: 1 shard(s) over 1 domain(s)
  faults: 250 element event(s) injected (mtbf 12, mttr 4)
  metric                serve
  --------------------  -----
  events                490
  borrowed              0
  starved               0
  horizon (slots)       291
  arrivals              240
  allocated             180
  completed             180
  cancelled             0
  expired               0
  left pending          60
  scheduling cycles     250
  cycles skipped clean  17
  solver work (arcs)    10572
  faults applied        129
  repairs applied       121
  victim circuits       0
  shed (admission)      0
  given up (budget)     0
  backoff retries       0
  quarantines           79

Checkpointing: a periodic checkpoint is written atomically on slot
boundaries while serving, and does not perturb the run:

  $ rsin replay omega:4 --slots 30 --arrival 0.4 --seed 5 --mode warm \
  >   --export trace.jsonl > /dev/null
  $ rsin serve omega:4 --trace trace.jsonl --domains 1 \
  >   --checkpoint-every 10 --checkpoint-file ck.json
  checkpoint: slot 10 -> ck.json
  checkpoint: slot 20 -> ck.json
  serving omega4: 1 shard(s) over 1 domain(s)
  metric                serve
  --------------------  -----
  events                44
  borrowed              0
  starved               40
  horizon (slots)       66
  arrivals              44
  allocated             44
  completed             44
  cancelled             0
  expired               0
  left pending          0
  scheduling cycles     36
  cycles skipped clean  0
  solver work (arcs)    1405

Restore: resuming from the checkpoint rebuilds the mid-run state (the
config travels inside the snapshot) and drains it to completion:

  $ rsin serve omega:4 --restore ck.json --domains 1 < /dev/null
  restored from ck.json
  serving omega4: 1 shard(s) over 1 domain(s)
  metric                serve
  --------------------  -----
  events                35
  borrowed              0
  starved               31
  horizon (slots)       52
  arrivals              35
  allocated             35
  completed             35
  cancelled             0
  expired               0
  left pending          0
  scheduling cycles     28
  cycles skipped clean  0
  solver work (arcs)    1092
  shed (admission)      0
  given up (budget)     0
  backoff retries       0
  quarantines           0

The guard's policy knobs validate at the flag layer:

  $ rsin serve omega:8 --synthetic --guard --queue-bound=-1 2>&1 | head -1
  rsin: Guard.Policy: queue_bound must be >= 0 (0 = unbounded)
  $ rsin serve omega:8 --synthetic --guard --flap-window 0 2>&1 | head -1
  rsin: option '--flap-window': value 0 must be > 0
