Mid-cycle faults strike the distributed token protocol at status-bus
clock granularity. A dead element kills its tokens and markings; the
protocol detects the damage at link level, aborts the iteration, rolls
its bonds back and retries on the surviving subnetwork. A stuck-at bus
bit derails phase control flow instead and is caught by the per-phase
watchdogs, driver readback and idle-bus checks. Here a link dies during
the request phase (clk 3) and E3 sticks at 1 through clks 9-14: the
cycle still allocates all three requests, at the cost of one aborted
iteration and three extra clock periods:

  $ rsin trace omega:8 --requests 0,2,5 --free 1,3,6 --mid-cycle-faults 3:link4,9:stuck1=e3,15:clear=e3
  allocated 3/3 in 1 iteration(s), 16 clock periods
  recovery: 3 fault(s) applied, 0 watchdog fire(s), 1 iteration abort(s), 0 cycle restart(s), 1 retry(ies), 0 wait clock(s)
  
  clk   0  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   1  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   2  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   3  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   4  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   5  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   6  1110010  E1 request pending, E2 resource ready, E3 request token propagation, E6 RS received token
  clk   7  1101000  E1 request pending, E2 resource ready, E4 resource token propagation
  clk   8  1101000  E1 request pending, E2 resource ready, E4 resource token propagation
  clk   9  1111000  E1 request pending, E2 resource ready, E3 request token propagation, E4 resource token propagation
  clk  10  1111000  E1 request pending, E2 resource ready, E3 request token propagation, E4 resource token propagation
  clk  11  1111000  E1 request pending, E2 resource ready, E3 request token propagation, E4 resource token propagation
  clk  12  1111000  E1 request pending, E2 resource ready, E3 request token propagation, E4 resource token propagation
  clk  13  1111000  E1 request pending, E2 resource ready, E3 request token propagation, E4 resource token propagation
  clk  14  1011000  E1 request pending, E3 request token propagation, E4 resource token propagation
  clk  15  1001101  E1 request pending, E4 resource token propagation, E5 path registration, E7 RQ bonded to RS


A switchbox death takes real capacity with it: the retry converges on
the degraded network's optimum (2 of 3 — centralized Dinic on the
surviving subnetwork agrees, which the test suite asserts over random
schedules):

  $ rsin trace omega:8 --requests 0,2,5 --free 1,3,6 --mid-cycle-faults 2:box1
  allocated 2/3 in 1 iteration(s), 14 clock periods
  recovery: 1 fault(s) applied, 0 watchdog fire(s), 1 iteration abort(s), 0 cycle restart(s), 1 retry(ies), 0 wait clock(s)
  
  clk   0  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   1  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   2  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   3  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   4  1110000  E1 request pending, E2 resource ready, E3 request token propagation
  clk   5  1110010  E1 request pending, E2 resource ready, E3 request token propagation, E6 RS received token
  clk   6  1101000  E1 request pending, E2 resource ready, E4 resource token propagation
  clk   7  1101000  E1 request pending, E2 resource ready, E4 resource token propagation
  clk   8  1101000  E1 request pending, E2 resource ready, E4 resource token propagation
  clk   9  1101000  E1 request pending, E2 resource ready, E4 resource token propagation
  clk  10  1101000  E1 request pending, E2 resource ready, E4 resource token propagation
  clk  11  1101000  E1 request pending, E2 resource ready, E4 resource token propagation
  clk  12  1101000  E1 request pending, E2 resource ready, E4 resource token propagation
  clk  13  1101101  E1 request pending, E2 resource ready, E4 resource token propagation, E5 path registration, E7 RQ bonded to RS


The replay engine drives the same protocol online: --mode token runs
every scheduling cycle on the token architecture, and --faults with
--fault-clock-granularity clock gives each injected fault a uniform
intra-cycle status-bus clock, so elements die mid-cycle and the
protocol absorbs them while circuits keep being torn down and
re-admitted at the slot level:

  $ rsin replay omega:8 --mode token --slots 30 --arrival 0.3 --seed 7 --faults --fault-clock-granularity clock --mtbf 60 --mttr 15
  faults: 25 element event(s) injected (mtbf 60, mttr 15)
  metric                   token
  -----------------------  ------
  horizon (slots)          49
  arrivals                 76
  allocated                52
  completed                48
  cancelled                0
  expired                  0
  left pending             28
  mean wait (slots)        3.923
  max wait (slots)         21
  throughput (tasks/slot)  0.980
  resource utilization     58.42%
  scheduling cycles        44
  cycles skipped clean     0
  solver work (arcs)       469
  faults applied           17
  repairs applied          8
  victim circuits          4
  mean re-admission wait   1.333

Malformed fault specifications are rejected up front:

  $ rsin trace omega:8 --mid-cycle-faults nonsense
  rsin: option '--mid-cycle-faults': bad fault "nonsense": expected CLOCK:FAULT
  Usage: rsin trace [OPTION]… NET
  Try 'rsin trace --help' or 'rsin --help' for more information.
  [124]
