The online engine serves a synthetic workload; warm-started scheduling
and rebuild-per-cycle allocate identically, warm doing less solver
work:

  $ rsin replay omega:8 --slots 40 --arrival 0.3 --seed 7 --export trace.jsonl
  exported 96 event(s) -> trace.jsonl
  metric                   warm    rebuild
  -----------------------  ------  -------
  horizon (slots)          68      68
  arrivals                 96      96
  allocated                96      96
  completed                96      96
  cancelled                0       0
  expired                  0       0
  left pending             0       0
  mean wait (slots)        8.469   8.469
  max wait (slots)         33      33
  throughput (tasks/slot)  1.412   1.412
  resource utilization     87.68%  87.68%
  scheduling cycles        50      50
  cycles skipped clean     0       0
  solver work (arcs)       4306    5517
  warm start saves 21.95% of rebuild solver work

The exported trace is plain JSONL, one event per line:

  $ head -2 trace.jsonl
  {"t":0,"ev":"arrive","id":0,"proc":2,"service":2}
  {"t":1,"ev":"arrive","id":1,"proc":0,"service":2}

Replaying the recorded trace reproduces the run exactly:

  $ rsin replay omega:8 --trace trace.jsonl --mode warm
  metric                   warm
  -----------------------  ------
  horizon (slots)          68
  arrivals                 96
  allocated                96
  completed                96
  cancelled                0
  expired                  0
  left pending             0
  mean wait (slots)        8.469
  max wait (slots)         33
  throughput (tasks/slot)  1.412
  resource utilization     87.68%
  scheduling cycles        50
  cycles skipped clean     0
  solver work (arcs)       4306

Batching holds requests back until the threshold is met, trading wait
for fuller cycles:

  $ rsin replay omega:8 --trace trace.jsonl --mode warm --threshold 4 | grep -E 'cycles|wait'
  mean wait (slots)        12.177
  max wait (slots)         40
  scheduling cycles        43
  cycles skipped clean     0

Deadlines and cancellations drop tasks that are never scheduled:

  $ rsin replay omega:8 --slots 40 --arrival 0.6 --seed 3 --cancel 0.2 --deadline-slack 8 --mode warm | grep -E 'arrivals|allocated|cancelled|expired|pending'
  arrivals                 200
  allocated                68
  cancelled                15
  expired                  117
  left pending             0

Malformed traces are rejected with the offending line:

  $ echo '{"t":0,"ev":"arrive","id":0}' > bad.jsonl
  $ rsin replay omega:8 --trace bad.jsonl
  rsin: cannot read trace: Workload.trace_of_jsonl: line 1: missing field "service"
  [1]
