(* Tests for the online allocation engine: the persistent incremental
   flow graph, the event loop, and the warm-start differential guarantee
   (every warm cycle allocates exactly as many requests as from-scratch
   scheduling of the same snapshot). *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Scheduler = Rsin_core.Scheduler
module Transform1 = Rsin_core.Transform1
module Transform2 = Rsin_core.Transform2
module Workload = Rsin_sim.Workload
module Fault = Rsin_fault.Fault
module Incremental = Rsin_engine.Incremental
module Engine = Rsin_engine.Engine
module Prng = Rsin_util.Prng

let check = Alcotest.check

let topologies () =
  [ Builders.omega 8; Builders.butterfly 8; Builders.benes 8 ]

(* --- Incremental vs from-scratch Transformation 1 ------------------------- *)

(* One solve of a fresh incremental graph must allocate exactly what the
   from-scratch solver allocates, and its circuits must establish
   link-disjointly on the real network. *)
let test_incremental_static () =
  List.iter
    (fun net ->
      List.iter
        (fun seed ->
          let rng = Prng.create seed in
          let requests, free = Workload.snapshot rng net in
          let inc = Incremental.create net in
          List.iter (fun p -> Incremental.set_requesting inc p true) requests;
          List.iter (fun r -> Incremental.set_resource_free inc r true) free;
          let r = Incremental.solve inc in
          let reference = Transform1.schedule net ~requests ~free in
          check Alcotest.int
            (Printf.sprintf "%s seed %d allocation" (Network.name net) seed)
            reference.Transform1.allocated
            (List.length r.Incremental.circuits);
          check Alcotest.bool "not skipped" false r.Incremental.skipped;
          check
            Alcotest.(result unit string)
            "conservation" (Ok ()) (Incremental.check inc);
          (* Establishing on a scratch copy proves the circuits are valid
             proc->res paths over pairwise disjoint free links. *)
          let scratch = Network.copy net in
          List.iter
            (fun (c : Incremental.circuit) ->
              check Alcotest.bool "starts at proc" true
                (List.mem (Network.proc_link scratch c.proc) c.links);
              check Alcotest.bool "ends at res" true
                (List.mem (Network.res_link scratch c.res) c.links);
              ignore (Network.establish scratch c.links))
            r.Incremental.circuits)
        [ 1; 2; 3; 4; 5 ])
    (topologies ())

(* Release must return the graph to a state equivalent to from-scratch:
   release every committed circuit, re-enable the endpoints, solve again
   and compare with a fresh solver on the unoccupied network. *)
let test_incremental_release_resolve () =
  let net = Builders.omega 8 in
  let requests, free = Workload.snapshot (Prng.create 42) net in
  let inc = Incremental.create net in
  List.iter (fun p -> Incremental.set_requesting inc p true) requests;
  List.iter (fun r -> Incremental.set_resource_free inc r true) free;
  let first = Incremental.solve inc in
  check Alcotest.bool "something allocated" true (first.Incremental.circuits <> []);
  List.iter (Incremental.release inc) first.Incremental.circuits;
  check Alcotest.(result unit string) "conserved after release" (Ok ())
    (Incremental.check inc);
  List.iter (fun p -> Incremental.set_requesting inc p true) requests;
  List.iter (fun r -> Incremental.set_resource_free inc r true) free;
  let second = Incremental.solve inc in
  check Alcotest.int "same allocation after full release"
    (List.length first.Incremental.circuits)
    (List.length second.Incremental.circuits)

let test_incremental_clean_skip () =
  let net = Builders.omega 8 in
  let inc = Incremental.create net in
  Incremental.set_requesting inc 0 true;
  List.iter (fun r -> Incremental.set_resource_free inc r true)
    (List.init (Network.n_res net) Fun.id);
  let first = Incremental.solve inc in
  check Alcotest.int "allocated one" 1 (List.length first.Incremental.circuits);
  (* Nothing enabled since: solver must answer without running. *)
  let again = Incremental.solve inc in
  check Alcotest.bool "skipped" true again.Incremental.skipped;
  check Alcotest.int "no circuits" 0 (List.length again.Incremental.circuits);
  check Alcotest.int "no work" 0 again.Incremental.work

(* --- Differential: warm engine vs from-scratch scheduling ----------------- *)

(* The acceptance test of the warm-start design: serve a randomized
   workload (arrivals, releases, cancellations, deadlines) and at every
   scheduling cycle compare the engine's allocation count against
   Scheduler.schedule run from scratch on the very same pre-commit
   network snapshot. Counts must be equal cycle by cycle — including
   skipped cycles, which claim 0 without running the solver. *)
let test_differential () =
  let total_cycles = ref 0 in
  List.iter
    (fun net ->
      List.iter
        (fun seed ->
          let trace =
            Workload.synthesize ~deadline_slack:25 ~cancel_prob:0.1
              (Prng.create seed) net ~slots:120 ~arrival_prob:0.3
          in
          let cycles_here = ref 0 in
          let hook snapshot (info : Engine.cycle_info) =
            incr total_cycles;
            incr cycles_here;
            let reference =
              Scheduler.schedule snapshot
                ~requests:(List.map Scheduler.request info.Engine.requests)
                ~resources:(List.map Scheduler.resource info.Engine.free)
            in
            check Alcotest.int
              (Printf.sprintf "%s seed %d cycle at t=%d" (Network.name net)
                 seed info.Engine.time)
              reference.Scheduler.allocated info.Engine.allocated
          in
          let report =
            Engine.run ~cycle_hook:hook
              ~config:(Engine.Config.v ~transmission_time:2 ~max_defer:8 ())
              net trace
          in
          check Alcotest.bool
            (Printf.sprintf "%s seed %d enough cycles" (Network.name net) seed)
            true
            (!cycles_here >= 30);
          check Alcotest.int "cycle count matches report" !cycles_here
            report.Engine.cycles)
        [ 10; 11 ])
    (topologies ());
  check Alcotest.bool "at least 100 differential cycles overall" true
    (!total_cycles >= 100)

(* The same guarantee under the priority discipline, and one notch
   stronger: at every warm cycle, a from-scratch Transformation 2 of the
   very same pre-commit snapshot (same pending processors with the same
   queue-head priorities, same free resources) must allocate the same
   number of requests AND serve the same total priority. Mappings may
   tie-break differently — the objective values may not. *)
let test_differential_priority () =
  let total_cycles = ref 0 in
  List.iter
    (fun net ->
      List.iter
        (fun seed ->
          let trace =
            Workload.synthesize ~deadline_slack:25 ~cancel_prob:0.1
              ~priority_levels:4 (Prng.create seed) net ~slots:150
              ~arrival_prob:0.3
          in
          let hook snapshot (info : Engine.cycle_info) =
            incr total_cycles;
            let label what =
              Printf.sprintf "%s seed %d cycle at t=%d: %s" (Network.name net)
                seed info.Engine.time what
            in
            let reference =
              Transform2.schedule snapshot
                ~requests:info.Engine.request_priorities
                ~free:(List.map (fun r -> (r, 0)) info.Engine.free)
            in
            check Alcotest.int (label "allocation")
              reference.Transform2.allocated info.Engine.allocated;
            let served mapping =
              List.fold_left
                (fun acc (p, _) ->
                  acc + List.assoc p info.Engine.request_priorities)
                0 mapping
            in
            check Alcotest.int (label "total priority served")
              (served reference.Transform2.mapping)
              (served info.Engine.mapping)
          in
          let report =
            Engine.run ~cycle_hook:hook
              ~config:
                (Engine.Config.v ~discipline:Engine.Priority
                   ~transmission_time:2 ~max_defer:8 ())
              net trace
          in
          check Alcotest.bool
            (Printf.sprintf "%s seed %d allocated something" (Network.name net)
               seed)
            true
            (report.Engine.allocated > 0))
        [ 10; 11; 12 ])
    (topologies ());
  check Alcotest.bool "at least 300 priority differential cycles overall" true
    (!total_cycles >= 300)

(* --- Engine accounting ----------------------------------------------------- *)

let run_both net trace =
  ( Engine.run ~config:(Engine.Config.v ~mode:Engine.Warm ()) net trace,
    Engine.run ~config:(Engine.Config.v ~mode:Engine.Rebuild ()) net trace )

let test_task_conservation () =
  let net = Builders.omega 16 in
  let trace =
    Workload.synthesize ~deadline_slack:20 ~cancel_prob:0.15 (Prng.create 3)
      net ~slots:200 ~arrival_prob:0.25
  in
  let warm, rebuild = run_both net trace in
  List.iter
    (fun (r : Engine.report) ->
      let name = Engine.mode_name r.Engine.mode in
      check Alcotest.int
        (name ^ ": every arrival allocated, dropped or still queued")
        r.Engine.arrivals
        (r.Engine.allocated + r.Engine.cancelled + r.Engine.expired
        + r.Engine.left_pending);
      check Alcotest.bool (name ^ ": some tasks dropped") true
        (r.Engine.cancelled > 0 && r.Engine.expired > 0);
      check Alcotest.int (name ^ ": every circuit completes service")
        r.Engine.allocated r.Engine.completed)
    [ warm; rebuild ];
  check Alcotest.bool "warm does less solver work than rebuild" true
    (warm.Engine.solver_work < rebuild.Engine.solver_work)

let test_determinism () =
  let net = Builders.benes 8 in
  let trace =
    Workload.synthesize ~cancel_prob:0.1 (Prng.create 9) net ~slots:80
      ~arrival_prob:0.4
  in
  let a = Engine.run net trace in
  let b = Engine.run net trace in
  check Alcotest.bool "equal reports" true (a = b)

(* A clean cycle must be answered without solver work. A Clos network
   with a single middle switch blocks deterministically: both processors
   of an input switch share one link to the middle stage, so p0's
   circuit cuts p1 off from every resource. The t=1 arrival at p1 is a
   real solve that proves the blockage; the t=2 arrival at the
   already-requesting p1 enables no capacity, so that cycle must be
   answered from the dirty flag alone — and once p0's circuit releases,
   p1's queue drains normally. *)
let test_skipped_cycle () =
  let net = Builders.clos ~m:1 ~n:2 ~r:2 in
  let arrive t id proc =
    Workload.Arrive { t; id; proc; service = 1; deadline = None; priority = 0 }
  in
  let trace = [ arrive 0 0 0; arrive 1 1 1; arrive 2 2 1 ] in
  let config = Engine.Config.v ~transmission_time:10 ~max_defer:100 () in
  let skipped_at = ref [] in
  let hook _net (info : Engine.cycle_info) =
    if info.Engine.skipped then begin
      skipped_at := info.Engine.time :: !skipped_at;
      check Alcotest.int "skipped cycle costs no solver work" 0
        info.Engine.work;
      check Alcotest.int "skipped cycle allocates nothing" 0
        info.Engine.allocated
    end
  in
  let report = Engine.run ~config ~cycle_hook:hook net trace in
  check Alcotest.(list int) "exactly the t=2 cycle is skipped" [ 2 ]
    !skipped_at;
  check Alcotest.int "skipped count in report" 1 report.Engine.skipped_cycles;
  check Alcotest.int "all tasks eventually served" 3 report.Engine.allocated;
  check Alcotest.int "nothing left queued" 0 report.Engine.left_pending

let test_batching_defers () =
  let net = Builders.omega 8 in
  let trace =
    [ Workload.Arrive
        { t = 0; id = 0; proc = 0; service = 2; deadline = None; priority = 0 };
      Workload.Arrive
        { t = 3; id = 1; proc = 1; service = 2; deadline = None; priority = 0 } ]
  in
  let config = Engine.Config.v ~batch_threshold:2 ~max_defer:10 () in
  let times = ref [] in
  let hook _net (info : Engine.cycle_info) =
    times := info.Engine.time :: !times
  in
  let report = Engine.run ~config ~cycle_hook:hook net trace in
  (* The lone request at t=0 is held back until the second arrival
     meets the batch threshold at t=3. *)
  check Alcotest.(list int) "one batched cycle" [ 3 ] (List.rev !times);
  check Alcotest.int "both allocated" 2 report.Engine.allocated;
  check Alcotest.int "max wait is the deferral" 3 report.Engine.max_wait;
  (* With max_defer below the second arrival the first request is
     forced through alone. *)
  let times' = ref [] in
  let hook' _net (info : Engine.cycle_info) =
    times' := info.Engine.time :: !times'
  in
  let report' =
    Engine.run
      ~config:(Engine.Config.v ~batch_threshold:2 ~max_defer:2 ())
      ~cycle_hook:hook' net trace
  in
  check Alcotest.int "forced cycle fires early" 2 (List.hd (List.rev !times'));
  check Alcotest.int "still all allocated" 2 report'.Engine.allocated

(* An Arrive whose deadline is already past (deadline <= t) must count
   as expired on the spot — it used to sit in the queue forever with no
   expiry event scheduled, and could even be served. *)
let test_deadline_dead_on_arrival () =
  let net = Builders.omega 8 in
  let arrive t id proc deadline =
    Workload.Arrive
      { t; id; proc; service = 2; deadline; priority = 0 }
  in
  let trace =
    [ arrive 5 0 0 (Some 5);      (* deadline = arrival slot: expired *)
      arrive 5 1 1 (Some 3);      (* deadline already past: expired *)
      arrive 5 2 2 (Some 9);      (* live *)
      arrive 5 3 3 None ]         (* live *)
  in
  List.iter
    (fun mode ->
      let rep = Engine.run ~config:(Engine.Config.v ~mode ()) net trace in
      let name = Engine.mode_name mode in
      check Alcotest.int (name ^ ": dead-on-arrival tasks expire") 2
        rep.Engine.expired;
      check Alcotest.int (name ^ ": live tasks still served") 2
        rep.Engine.allocated;
      check Alcotest.int (name ^ ": conservation") rep.Engine.arrivals
        (rep.Engine.allocated + rep.Engine.cancelled + rep.Engine.expired
        + rep.Engine.left_pending))
    [ Engine.Warm; Engine.Rebuild; Engine.Token ]

(* --- Token mode ------------------------------------------------------------ *)

(* Every token-mode cycle allocates exactly what centralized Dinic
   allocates on the same pre-commit snapshot — the same differential the
   warm engine is held to, now with the distributed protocol in the
   loop. *)
let test_token_differential () =
  List.iter
    (fun net ->
      let trace =
        Workload.synthesize ~deadline_slack:25 ~cancel_prob:0.1
          (Prng.create 17) net ~slots:80 ~arrival_prob:0.3
      in
      let cycles_here = ref 0 in
      let hook snapshot (info : Engine.cycle_info) =
        incr cycles_here;
        let reference =
          Scheduler.schedule snapshot
            ~requests:(List.map Scheduler.request info.Engine.requests)
            ~resources:(List.map Scheduler.resource info.Engine.free)
        in
        check Alcotest.int
          (Printf.sprintf "%s token cycle at t=%d" (Network.name net)
             info.Engine.time)
          reference.Scheduler.allocated info.Engine.allocated
      in
      let report =
        Engine.run ~cycle_hook:hook
          ~config:
            (Engine.Config.v ~mode:Engine.Token ~transmission_time:2
               ~max_defer:8 ())
          net trace
      in
      check Alcotest.bool (Network.name net ^ ": enough token cycles") true
        (!cycles_here >= 20);
      check Alcotest.bool (Network.name net ^ ": clock-period work") true
        (report.Engine.solver_work > 0))
    (topologies ())

(* Token mode with mid-cycle (clocked) trace faults: the differential
   still holds at every cycle — the hook's snapshot reflects exactly the
   deaths the token run absorbed — and the usual conservation and
   determinism guarantees survive. *)
let test_token_clocked_faults () =
  let net = Builders.omega 8 in
  let base =
    Workload.synthesize ~deadline_slack:30 (Prng.create 21) net ~slots:100
      ~arrival_prob:0.3
  in
  let sched =
    Fault.inject_clocked (Prng.create 22) net ~horizon:100 ~mtbf:40. ~mttr:15.
      ~clock_range:40
  in
  let trace =
    Workload.sort_trace (base @ Workload.fault_events_clocked sched)
  in
  let hook snapshot (info : Engine.cycle_info) =
    let reference =
      Scheduler.schedule snapshot
        ~requests:(List.map Scheduler.request info.Engine.requests)
        ~resources:(List.map Scheduler.resource info.Engine.free)
    in
    check Alcotest.int
      (Printf.sprintf "faulted token cycle at t=%d" info.Engine.time)
      reference.Scheduler.allocated info.Engine.allocated
  in
  let config =
    Engine.Config.v ~mode:Engine.Token ~transmission_time:2 ~max_defer:8 ()
  in
  let rep = Engine.run ~config ~cycle_hook:hook net trace in
  check Alcotest.bool "faults were applied" true (rep.Engine.faults > 0);
  check Alcotest.bool "repairs were applied" true (rep.Engine.repairs > 0);
  check Alcotest.int "conservation under faults" rep.Engine.arrivals
    (rep.Engine.completed + rep.Engine.cancelled + rep.Engine.expired
    + rep.Engine.left_pending);
  let again = Engine.run ~config net trace in
  let rep' = Engine.run ~config net trace in
  check Alcotest.bool "token runs deterministic" true (again = rep')

let test_token_rejects_priority () =
  Alcotest.check_raises "token + priority"
    (Invalid_argument "Engine.Config: token mode runs the uniform discipline only")
    (fun () ->
      ignore
        (Engine.Config.v ~mode:Engine.Token ~discipline:Engine.Priority ()))

let test_rejects_bad_trace () =
  let net = Builders.omega 8 in
  Alcotest.check_raises "bad processor"
    (Invalid_argument "Engine.feed: bad processor in trace") (fun () ->
      ignore
        (Engine.run net
           [ Workload.Arrive
               { t = 0; id = 0; proc = 99; service = 1; deadline = None; priority = 0 } ]));
  Alcotest.check_raises "bad service"
    (Invalid_argument "Engine.feed: bad service time in trace") (fun () ->
      ignore
        (Engine.run net
           [ Workload.Arrive
               { t = 0; id = 0; proc = 0; service = 0; deadline = None; priority = 0 } ]))

(* --- Config: validation and round-trips ------------------------------------ *)

(* Every field combination a generator can produce must survive
   Config -> JSON -> Config bit-identically: the sharded serve loop
   ships per-domain configs through exactly this codec. *)
let config_gen =
  QCheck.Gen.(
    let* mode = oneofl [ Engine.Warm; Engine.Rebuild; Engine.Token ] in
    let* discipline =
      if mode = Engine.Token then return Engine.Uniform
      else oneofl [ Engine.Uniform; Engine.Priority ]
    in
    let* solver =
      oneofl [ "dinic"; "edmonds-karp"; "push-relabel"; "dinic-csr";
               "mincost-csr" ]
    in
    let* transmission_time = int_range 1 9 in
    let* batch_threshold = int_range 1 4 in
    let* max_defer = int_range 1 40 in
    let* heartbeat = int_range 0 1000 in
    let* faults =
      oneof
        [ return None;
          (let* mtbf = float_range 1. 200. in
           let* mttr = float_range 1. 50. in
           let* granularity = oneofl [ `Slot; `Clock ] in
           return (Some { Engine.Config.mtbf; mttr; granularity })) ]
    in
    return
      (Engine.Config.v ~mode ~discipline ~solver ~transmission_time
         ~batch_threshold ~max_defer ~heartbeat ~faults ()))

let config_arb =
  QCheck.make
    ~print:(fun c -> Format.asprintf "%a" Engine.Config.pp c)
    config_gen

let test_config_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Config JSON round-trip" ~count:200 config_arb
       (fun c ->
         match Engine.Config.of_json (Engine.Config.to_json c) with
         | Ok c' -> c = c'
         | Error msg -> QCheck.Test.fail_report msg))

let test_config_roundtrip_text =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Config JSON round-trip through text" ~count:200
       config_arb (fun c ->
         let s = Rsin_util.Json.to_string (Engine.Config.to_json c) in
         match Rsin_util.Json.parse s with
         | Error msg -> QCheck.Test.fail_report msg
         | Ok j -> (
           match Engine.Config.of_json j with
           | Ok c' -> c = c'
           | Error msg -> QCheck.Test.fail_report msg)))

let test_config_validation () =
  let bad what f =
    match f () with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error msg ->
      check Alcotest.bool (what ^ ": message names the module") true
        (String.length msg > 14 && String.sub msg 0 14 = "Engine.Config:")
  in
  bad "transmission_time 0" (fun () ->
      Engine.Config.make ~transmission_time:0 ());
  bad "batch_threshold 0" (fun () -> Engine.Config.make ~batch_threshold:0 ());
  bad "max_defer 0" (fun () -> Engine.Config.make ~max_defer:0 ());
  bad "negative heartbeat" (fun () -> Engine.Config.make ~heartbeat:(-1) ());
  bad "unknown solver" (fun () -> Engine.Config.make ~solver:"simplex9" ());
  bad "token + priority" (fun () ->
      Engine.Config.make ~mode:Engine.Token ~discipline:Engine.Priority ());
  bad "bad fault plan" (fun () ->
      Engine.Config.make
        ~faults:
          (Some { Engine.Config.mtbf = 0.; mttr = 1.; granularity = `Slot })
        ());
  (match Engine.Config.of_json (Rsin_util.Json.Arr []) with
  | Ok _ -> Alcotest.fail "non-object accepted"
  | Error _ -> ());
  (match
     Engine.Config.of_json
       (Rsin_util.Json.Obj [ ("solver", Rsin_util.Json.Num 3.) ])
   with
  | Ok _ -> Alcotest.fail "mistyped field accepted"
  | Error _ -> ());
  check Alcotest.bool "default is valid and plain" true
    (Engine.Config.default.Engine.Config.mode = Engine.Warm
    && Engine.Config.default.Engine.Config.solver = "dinic")

let suite =
  [
    Alcotest.test_case "incremental matches transform1" `Quick
      test_incremental_static;
    Alcotest.test_case "incremental release+resolve" `Quick
      test_incremental_release_resolve;
    Alcotest.test_case "incremental clean skip" `Quick
      test_incremental_clean_skip;
    Alcotest.test_case "warm differential vs from-scratch" `Slow
      test_differential;
    Alcotest.test_case "priority warm differential vs transform2" `Slow
      test_differential_priority;
    Alcotest.test_case "task conservation" `Quick test_task_conservation;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "skipped clean cycle" `Quick test_skipped_cycle;
    Alcotest.test_case "batched admission" `Quick test_batching_defers;
    Alcotest.test_case "deadline dead on arrival" `Quick
      test_deadline_dead_on_arrival;
    Alcotest.test_case "token differential vs dinic" `Slow
      test_token_differential;
    Alcotest.test_case "token mode under clocked faults" `Quick
      test_token_clocked_faults;
    Alcotest.test_case "token rejects priority" `Quick
      test_token_rejects_priority;
    Alcotest.test_case "rejects bad trace" `Quick test_rejects_bad_trace;
    test_config_roundtrip;
    test_config_roundtrip_text;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
