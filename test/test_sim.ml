(* Tests for the Monte-Carlo evaluation substrate: workload generation,
   blocking-probability estimation and the dynamic discrete-time
   simulation. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Workload = Rsin_sim.Workload
module Blocking = Rsin_sim.Blocking
module Dynamic = Rsin_sim.Dynamic
module Prng = Rsin_util.Prng

let check = Alcotest.check
let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* --- Workload ------------------------------------------------------------ *)

let test_snapshot_bounds () =
  let rng = Prng.create 3 in
  let net = Builders.omega 16 in
  let requests, free = Workload.snapshot rng net in
  List.iter (fun p -> check Alcotest.bool "proc in range" true (p >= 0 && p < 16)) requests;
  List.iter (fun r -> check Alcotest.bool "res in range" true (r >= 0 && r < 16)) free

let test_snapshot_density () =
  let rng = Prng.create 4 in
  let net = Builders.omega 16 in
  let total = ref 0 in
  for _ = 1 to 500 do
    let requests, _ = Workload.snapshot ~req_density:0.25 rng net in
    total := !total + List.length requests
  done;
  let mean = float_of_int !total /. 500. in
  check Alcotest.bool "density 0.25 of 16 ~= 4" true (abs_float (mean -. 4.) < 0.3)

let test_snapshot_extremes () =
  let rng = Prng.create 5 in
  let net = Builders.omega 8 in
  let requests, free = Workload.snapshot ~req_density:1.0 ~res_density:0.0 rng net in
  check Alcotest.int "all request" 8 (List.length requests);
  check Alcotest.int "none free" 0 (List.length free)

let test_preoccupy () =
  let rng = Prng.create 6 in
  let net = Builders.omega 8 in
  let made = Workload.preoccupy rng net ~circuits:3 in
  check Alcotest.int "three circuits" 3 made;
  check Alcotest.int "live" 3 (List.length (Network.circuits net));
  let busy_p, busy_r = Workload.occupied_endpoints net in
  check Alcotest.int "three busy procs" 3 (List.length busy_p);
  check Alcotest.int "three busy ress" 3 (List.length busy_r)

let test_preoccupy_saturation () =
  let rng = Prng.create 7 in
  let net = Builders.omega 8 in
  (* asking for more circuits than processors caps out gracefully *)
  let made = Workload.preoccupy rng net ~circuits:20 in
  check Alcotest.bool "at most 8" true (made <= 8)

let test_with_priorities () =
  let rng = Prng.create 8 in
  let tagged = Workload.with_priorities rng ~levels:10 [ 1; 2; 3 ] in
  check Alcotest.int "length" 3 (List.length tagged);
  List.iter
    (fun (_, y) -> check Alcotest.bool "priority in [1,10]" true (y >= 1 && y <= 10))
    tagged

let test_hetero_spec () =
  let rng = Prng.create 9 in
  let spec = Workload.hetero_spec rng ~types:3 ~requests:[ 0; 1 ] ~free:[ 2; 3; 4 ] in
  check Alcotest.int "requests" 2 (List.length spec.Rsin_core.Hetero.requests);
  check Alcotest.int "free" 3 (List.length spec.Rsin_core.Hetero.free);
  List.iter
    (fun (_, ty, y) ->
      check Alcotest.bool "type in range" true (ty >= 0 && ty < 3);
      check Alcotest.int "no priorities by default" 0 y)
    spec.Rsin_core.Hetero.requests

(* --- Blocking estimation --------------------------------------------------- *)

let test_blocking_range () =
  let rng = Prng.create 10 in
  let cfg = { Blocking.default_config with trials = 100 } in
  List.iter
    (fun s ->
      let e = Blocking.estimate ~config:cfg ~scheduler:s rng (fun () -> Builders.omega 8) in
      check Alcotest.bool "blocking in [0,1]" true
        (e.Blocking.mean_blocking >= 0. && e.Blocking.mean_blocking <= 1.);
      check Alcotest.bool "utilization in [0,1]" true
        (e.Blocking.utilization >= 0. && e.Blocking.utilization <= 1.000001);
      check Alcotest.bool "trials counted" true (e.Blocking.trials_used > 0))
    [ Blocking.Optimal; Blocking.First_fit; Blocking.Address_map ]

let test_optimal_beats_heuristics () =
  (* The paper's core comparison, as a statistical assertion. *)
  let cfg =
    { Blocking.default_config with trials = 200; req_density = 0.7; res_density = 0.7 }
  in
  let run s =
    let rng = Prng.create 11 in
    (Blocking.estimate ~config:cfg ~scheduler:s rng (fun () -> Builders.butterfly 8))
      .Blocking.mean_blocking
  in
  let opt = run Blocking.Optimal in
  let amap = run Blocking.Address_map in
  check Alcotest.bool "optimal << address map" true (opt < amap);
  check Alcotest.bool "optimal below 5%" true (opt < 0.05);
  check Alcotest.bool "address map around 10-35%" true (amap > 0.05 && amap < 0.40)

let test_distributed_matches_optimal_blocking () =
  let cfg = { Blocking.default_config with trials = 100 } in
  let run s =
    let rng = Prng.create 12 in
    (Blocking.estimate ~config:cfg ~scheduler:s rng (fun () -> Builders.omega 8))
      .Blocking.mean_blocking
  in
  check (Alcotest.float 1e-9) "identical estimates"
    (run Blocking.Optimal) (run Blocking.Distributed)

let test_blocking_determinism () =
  let cfg = { Blocking.default_config with trials = 50 } in
  let run () =
    let rng = Prng.create 13 in
    (Blocking.estimate ~config:cfg ~scheduler:Blocking.First_fit rng (fun () ->
         Builders.omega 8))
      .Blocking.mean_blocking
  in
  check (Alcotest.float 1e-12) "same seed, same estimate" (run ()) (run ())

let blocking_allocated_of_consistent =
  qtest "allocated_of: optimal dominates on the same instance" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let net = Builders.omega 8 in
      let requests, free = Workload.snapshot rng net in
      if requests = [] || free = [] then true
      else begin
        let opt = Blocking.allocated_of Blocking.Optimal rng net ~requests ~free in
        let ff = Blocking.allocated_of Blocking.First_fit rng net ~requests ~free in
        let am = Blocking.allocated_of Blocking.Address_map rng net ~requests ~free in
        ff <= opt && am <= opt && opt <= min (List.length requests) (List.length free)
      end)

(* --- Dynamic simulation ------------------------------------------------------ *)

let base_params =
  { Dynamic.arrival_prob = 0.2; transmission_time = 1; mean_service = 4.;
    slots = 400; warmup = 100 }

let test_dynamic_sanity () =
  let rng = Prng.create 14 in
  let net = Builders.omega 8 in
  let m = Dynamic.run rng net base_params in
  check Alcotest.bool "throughput positive" true (m.Dynamic.throughput > 0.);
  check Alcotest.bool "utilization in [0,1]" true
    (m.Dynamic.resource_utilization >= 0. && m.Dynamic.resource_utilization <= 1.);
  check Alcotest.bool "completions happened" true (m.Dynamic.completed > 0);
  check Alcotest.bool "queue nonnegative" true (m.Dynamic.mean_queue >= 0.)

let test_dynamic_low_load_balances () =
  (* At light load the system must keep up: throughput ~= offered load. *)
  let rng = Prng.create 15 in
  let net = Builders.omega 8 in
  let p = { base_params with arrival_prob = 0.05; slots = 3000; warmup = 500 } in
  let m = Dynamic.run rng net p in
  check Alcotest.bool "keeps up with offered load" true
    (m.Dynamic.throughput > 0.8 *. m.Dynamic.offered_load)

let test_dynamic_saturation () =
  (* At overload, utilization approaches 1 and queues grow. *)
  let rng = Prng.create 16 in
  let net = Builders.omega 8 in
  let p = { base_params with arrival_prob = 0.9; mean_service = 8.; slots = 1000 } in
  let m = Dynamic.run rng net p in
  check Alcotest.bool "resources saturated" true (m.Dynamic.resource_utilization > 0.8);
  check Alcotest.bool "queues build" true (m.Dynamic.mean_queue > 0.5)

let test_dynamic_utilization_grows_with_load () =
  let util ap =
    let rng = Prng.create 17 in
    (Dynamic.run rng (Builders.omega 8) { base_params with arrival_prob = ap; slots = 1500 })
      .Dynamic.resource_utilization
  in
  let u1 = util 0.05 and u2 = util 0.5 in
  check Alcotest.bool "monotone in load" true (u2 > u1)

let test_dynamic_schedulers_comparable () =
  let rng1 = Prng.create 18 and rng2 = Prng.create 18 in
  let net = Builders.omega 8 in
  let p = { base_params with arrival_prob = 0.5 } in
  let a = Dynamic.run ~scheduler:Dynamic.Optimal rng1 net p in
  let b = Dynamic.run ~scheduler:Dynamic.First_fit rng2 net p in
  check Alcotest.bool "both complete work" true
    (a.Dynamic.completed > 0 && b.Dynamic.completed > 0)

let test_dynamic_param_validation () =
  let rng = Prng.create 19 in
  let net = Builders.omega 8 in
  Alcotest.check_raises "bad arrival" (Invalid_argument "Dynamic.run: arrival_prob")
    (fun () -> ignore (Dynamic.run rng net { base_params with arrival_prob = 1.5 }));
  Alcotest.check_raises "bad transmission"
    (Invalid_argument "Dynamic.run: transmission_time") (fun () ->
      ignore (Dynamic.run rng net { base_params with transmission_time = 0 }))

let test_dynamic_does_not_mutate () =
  let rng = Prng.create 20 in
  let net = Builders.omega 8 in
  ignore (Workload.preoccupy rng net ~circuits:1);
  let live = List.length (Network.circuits net) in
  ignore (Dynamic.run rng net base_params);
  check Alcotest.int "original circuits intact" live
    (List.length (Network.circuits net))

(* --- Workload traces ------------------------------------------------------- *)

let test_trace_synthesize () =
  let net = Builders.omega 8 in
  let trace =
    Workload.synthesize ~deadline_slack:30 ~cancel_prob:0.2 (Prng.create 5) net
      ~slots:100 ~arrival_prob:0.3
  in
  check Alcotest.bool "nonempty" true (trace <> []);
  let sorted = Workload.sort_trace trace in
  check Alcotest.bool "already time-sorted" true (trace = sorted);
  let arrivals, cancels =
    List.partition (function Workload.Arrive _ -> true | _ -> false) trace
  in
  check Alcotest.bool "some cancellations" true (cancels <> []);
  List.iter
    (function
      | Workload.Arrive { t; id = _; proc; service; deadline; priority = _ } ->
        check Alcotest.bool "proc in range" true
          (proc >= 0 && proc < Network.n_procs net);
        check Alcotest.bool "service positive" true (service >= 1);
        (match deadline with
        | Some d -> check Alcotest.bool "deadline after arrival" true (d > t)
        | None -> Alcotest.fail "slack given but no deadline")
      | Workload.Cancel _ | Workload.Fault _ | Workload.Repair _ -> ())
    arrivals;
  (* Every cancellation refers to an arrived task, strictly later. *)
  List.iter
    (function
      | Workload.Cancel { t; id } ->
        let arrived =
          List.exists
            (function
              | Workload.Arrive { t = ta; id = ia; _ } -> ia = id && ta < t
              | _ -> false)
            arrivals
        in
        check Alcotest.bool "cancel after its arrival" true arrived
      | Workload.Arrive _ | Workload.Fault _ | Workload.Repair _ -> ())
    cancels;
  (* Independent sub-streams: turning cancellations on must not change
     the arrival process drawn from the same seed. *)
  let plain =
    Workload.synthesize (Prng.create 5) net ~slots:100 ~arrival_prob:0.3
  in
  let arrival_keys tr =
    List.filter_map
      (function
        | Workload.Arrive { t; id; proc; _ } -> Some (t, id, proc)
        | Workload.Cancel _ | Workload.Fault _ | Workload.Repair _ -> None)
      tr
  in
  check
    Alcotest.(list (triple int int int))
    "same arrivals with and without cancels" (arrival_keys plain)
    (arrival_keys trace)

let test_trace_jsonl_roundtrip () =
  let net = Builders.omega 8 in
  let trace =
    Workload.synthesize ~deadline_slack:30 ~cancel_prob:0.2 (Prng.create 6) net
      ~slots:60 ~arrival_prob:0.4
  in
  let back = Workload.trace_of_jsonl (Workload.trace_to_jsonl trace) in
  check Alcotest.bool "round trip preserves the trace" true (trace = back);
  (* File form too. *)
  let file = Filename.temp_file "rsin_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Workload.write_trace file trace;
      check Alcotest.bool "file round trip" true (Workload.read_trace file = trace))

let test_trace_jsonl_rejects_garbage () =
  List.iter
    (fun bad ->
      match Workload.trace_of_jsonl bad with
      | _ -> Alcotest.fail ("accepted: " ^ bad)
      | exception Failure _ -> ())
    [ "not json";
      "{\"t\":0,\"ev\":\"arrive\",\"id\":0}";
      "{\"t\":0,\"ev\":\"nope\",\"id\":0}";
      "{\"t\":0,\"ev\":\"arrive\",\"id\":0,\"proc\":1,\"service\":0}" ]

(* Malformed lines are reported with their 1-based line number, not an
   exception — and the number names the offending line, not line 1. *)
let test_import_error_lines () =
  let good = "{\"t\":0,\"ev\":\"arrive\",\"id\":0,\"proc\":1,\"service\":2}" in
  List.iter
    (fun (text, line) ->
      match Workload.import text with
      | Ok _ -> Alcotest.fail "accepted a malformed trace"
      | Error e ->
        check Alcotest.int "error line" line e.Workload.line;
        check Alcotest.bool "has a message" true
          (String.length e.Workload.message > 0))
    [ ("garbage", 1);
      (good ^ "\n{\"t\":1,\"ev\":\"cancel\"}", 2);
      (good ^ "\n" ^ good ^ "\n{\"t\":1,\"ev\":\"cancel\",\"id\":\"x\"}", 3);
      ( good ^ "\n{\"t\":1,\"ev\":\"fault\",\"kind\":\"link\",\"idx\":0,\
                \"clock\":-3}",
        2 ) ]

(* The clocked fault form round-trips, and clock-free events keep the
   original on-disk format (no "clock" key at all). *)
let test_clocked_fault_roundtrip () =
  let trace =
    [ Workload.Fault { t = 2; clock = Some 7; element = Rsin_fault.Fault.Link 3 };
      Workload.Fault { t = 3; clock = None; element = Rsin_fault.Fault.Box 1 };
      Workload.Repair { t = 5; clock = Some 0; element = Rsin_fault.Fault.Res 2 }
    ]
  in
  let jsonl = Workload.trace_to_jsonl trace in
  check Alcotest.bool "clock serialized" true
    (String.length jsonl
    > String.length (String.concat "" (String.split_on_char 'c' jsonl)));
  check Alcotest.bool "round trip" true
    (Workload.import jsonl = Ok trace);
  let slot_only =
    Workload.trace_to_jsonl
      [ Workload.Fault { t = 2; clock = None; element = Rsin_fault.Fault.Link 3 } ]
  in
  check Alcotest.string "clock-free keeps the original format"
    "{\"t\":2,\"ev\":\"fault\",\"kind\":\"link\",\"idx\":3}\n" slot_only

(* Fuzz: however a valid trace is mutated — bytes flipped, lines
   truncated, dropped or replaced by garbage — [import] returns [Ok] or
   a line-numbered [Error]; it never raises. And the unmutated text
   always round-trips to the original trace. *)
let import_fuzz =
  qtest "import survives mutated traces" ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Prng.create (seed + 8000) in
      let net = Builders.omega 8 in
      let base =
        Workload.synthesize ~deadline_slack:20 ~cancel_prob:0.2
          ~priority_levels:3 (Prng.create seed) net ~slots:20
          ~arrival_prob:0.4
      in
      let sched =
        Rsin_fault.Fault.inject_clocked (Prng.create seed) net ~horizon:20
          ~mtbf:30. ~mttr:10. ~clock_range:16
      in
      let trace =
        Workload.sort_trace (base @ Workload.fault_events_clocked sched)
      in
      let text = Workload.trace_to_jsonl trace in
      if Workload.import text <> Ok trace then false
      else begin
        let mutate s =
          if String.length s = 0 then s
          else
            match Prng.int rng 4 with
            | 0 ->
              (* Flip one byte. *)
              let b = Bytes.of_string s in
              let i = Prng.int rng (Bytes.length b) in
              Bytes.set b i (Char.chr (Prng.int rng 256));
              Bytes.to_string b
            | 1 -> String.sub s 0 (Prng.int rng (String.length s))
            | 2 ->
              (* Drop a line. *)
              let lines = String.split_on_char '\n' s in
              let k = Prng.int rng (List.length lines) in
              String.concat "\n"
                (List.filteri (fun i _ -> i <> k) lines)
            | _ -> "{]garbage\n" ^ s
        in
        let mutated = ref text in
        for _ = 1 to 1 + Prng.int rng 3 do
          mutated := mutate !mutated
        done;
        match Workload.import !mutated with
        | Ok _ -> true
        | Error e -> e.Workload.line >= 1
        | exception _ -> false
      end)

let suite =
  [
    Alcotest.test_case "snapshot bounds" `Quick test_snapshot_bounds;
    Alcotest.test_case "trace synthesize" `Quick test_trace_synthesize;
    Alcotest.test_case "trace jsonl roundtrip" `Quick test_trace_jsonl_roundtrip;
    Alcotest.test_case "trace jsonl rejects garbage" `Quick
      test_trace_jsonl_rejects_garbage;
    Alcotest.test_case "import error lines" `Quick test_import_error_lines;
    Alcotest.test_case "clocked fault roundtrip" `Quick
      test_clocked_fault_roundtrip;
    import_fuzz;
    Alcotest.test_case "snapshot density" `Quick test_snapshot_density;
    Alcotest.test_case "snapshot extremes" `Quick test_snapshot_extremes;
    Alcotest.test_case "preoccupy" `Quick test_preoccupy;
    Alcotest.test_case "preoccupy saturation" `Quick test_preoccupy_saturation;
    Alcotest.test_case "with_priorities" `Quick test_with_priorities;
    Alcotest.test_case "hetero_spec" `Quick test_hetero_spec;
    Alcotest.test_case "blocking in range" `Quick test_blocking_range;
    Alcotest.test_case "optimal beats heuristics" `Quick test_optimal_beats_heuristics;
    Alcotest.test_case "distributed = optimal estimates" `Quick
      test_distributed_matches_optimal_blocking;
    Alcotest.test_case "blocking deterministic by seed" `Quick test_blocking_determinism;
    blocking_allocated_of_consistent;
    Alcotest.test_case "dynamic sanity" `Quick test_dynamic_sanity;
    Alcotest.test_case "dynamic low load keeps up" `Quick test_dynamic_low_load_balances;
    Alcotest.test_case "dynamic saturation" `Quick test_dynamic_saturation;
    Alcotest.test_case "dynamic utilization monotone" `Quick
      test_dynamic_utilization_grows_with_load;
    Alcotest.test_case "dynamic schedulers comparable" `Quick
      test_dynamic_schedulers_comparable;
    Alcotest.test_case "dynamic param validation" `Quick test_dynamic_param_validation;
    Alcotest.test_case "dynamic does not mutate" `Quick test_dynamic_does_not_mutate;
  ]
