(* Tests for the sharded multicore serving engine: the multi-plane
   builder, the shard partitioner, the domain pool, the cross-shard
   borrowing protocol, and the two headline guarantees — the merged
   differential (Σ per-shard allocations equals one from-scratch Dinic
   on the merged network, cycle by cycle, faults included) and domain
   determinism (domains=1 and domains=N produce identical per-cycle
   allocation trajectories). *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Transform1 = Rsin_core.Transform1
module Workload = Rsin_sim.Workload
module Fault = Rsin_fault.Fault
module Engine = Rsin_engine.Engine
module Shard = Rsin_engine.Shard
module Serve = Rsin_engine.Serve
module Domain_pool = Rsin_util.Domain_pool
module Prng = Rsin_util.Prng

let check = Alcotest.check

(* --- Builders.multiplane -------------------------------------------------- *)

let test_multiplane_shape () =
  let base = Builders.omega 8 in
  let net = Builders.multiplane ~planes:3 base in
  check Alcotest.int "procs" 24 (Network.n_procs net);
  check Alcotest.int "res" 24 (Network.n_res net);
  check Alcotest.int "stages" (Network.stages base) (Network.stages net);
  check Alcotest.int "boxes" (3 * Network.n_boxes base) (Network.n_boxes net);
  check Alcotest.int "links" (3 * Network.n_links base) (Network.n_links net);
  Network.paths_exist net;
  (* Planes are isolated: a processor reaches exactly its own plane's
     resource ports. *)
  for p = 0 to 23 do
    for r = 0 to 23 do
      let same_plane = p / 8 = r / 8 in
      let reachable = Builders.route_unique net ~proc:p ~res:r <> None in
      check Alcotest.bool
        (Printf.sprintf "p%d->r%d reachable iff same plane" p r)
        same_plane reachable
    done
  done

let test_multiplane_flow_decomposes () =
  (* Max flow on the union equals the sum of per-plane max flows, for a
     spread of random request/free patterns. *)
  let base = Builders.omega 8 in
  let net = Builders.multiplane ~planes:2 base in
  List.iter
    (fun seed ->
      let rng = Prng.create seed in
      let requests, free = Workload.snapshot rng net in
      let merged = Transform1.schedule net ~requests ~free in
      let plane p =
        let mine l = List.filter (fun i -> i / 8 = p) l in
        match (mine requests, mine free) with
        | [], _ | _, [] -> 0
        | reqs, frs ->
          (Transform1.schedule net ~requests:reqs ~free:frs).Transform1.allocated
      in
      check Alcotest.int
        (Printf.sprintf "seed %d: union flow = plane sums" seed)
        (plane 0 + plane 1) merged.Transform1.allocated)
    [ 1; 2; 3; 4; 5 ]

let test_multiplane_invalid () =
  check Alcotest.bool "planes 0 rejected" true
    (try ignore (Builders.multiplane ~planes:0 (Builders.omega 4)); false
     with Invalid_argument _ -> true);
  let busy = Builders.omega 4 in
  (match Builders.route_unique busy ~proc:0 ~res:0 with
  | Some links -> ignore (Network.establish busy links)
  | None -> Alcotest.fail "route on empty omega4");
  check Alcotest.bool "busy base rejected" true
    (try ignore (Builders.multiplane ~planes:2 busy); false
     with Invalid_argument _ -> true)

(* --- Shard.partition ------------------------------------------------------ *)

let test_partition_planes () =
  let net = Builders.multiplane ~planes:4 (Builders.omega 8) in
  check Alcotest.int "components" 4 (Shard.components net);
  match Shard.partition net with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.int "shards" 4 (Shard.n_shards t);
    Array.iteri
      (fun si part ->
        check Alcotest.int "shard procs" 8 (Array.length part.Shard.procs);
        check Alcotest.int "shard res" 8 (Array.length part.Shard.ress);
        check Alcotest.bool "shard full access" true
          (Builders.full_access part.Shard.net);
        (* Local<->global maps round-trip. *)
        Array.iteri
          (fun l g ->
            check Alcotest.int "proc shard" si t.Shard.shard_of_proc.(g);
            check Alcotest.int "proc local" l t.Shard.local_proc.(g))
          part.Shard.procs)
      t.Shard.parts

let test_partition_packing () =
  (* 4 components onto 2 shards: LPT packs 2 + 2. *)
  let net = Builders.multiplane ~planes:4 (Builders.omega 4) in
  match Shard.partition ~shards:2 net with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.int "two shards" 2 (Shard.n_shards t);
    Array.iter
      (fun part ->
        check Alcotest.int "balanced procs" 8 (Array.length part.Shard.procs))
      t.Shard.parts

let test_partition_connected_single () =
  (* A connected network is one component: one shard, same shape. *)
  let net = Builders.clos ~m:3 ~n:2 ~r:3 in
  match Shard.partition ~shards:4 net with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.int "one shard" 1 (Shard.n_shards t);
    let part = t.Shard.parts.(0) in
    check Alcotest.int "all procs" (Network.n_procs net)
      (Array.length part.Shard.procs);
    check Alcotest.int "all links"
      (Network.n_links net)
      (Array.length part.Shard.links);
    check Alcotest.bool "full access" true (Builders.full_access part.Shard.net)

let test_partition_health_mirror () =
  let net = Builders.multiplane ~planes:2 (Builders.omega 4) in
  Network.set_link_up net 3 false;
  Network.set_res_up net 5 false;
  match Shard.partition net with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let down_links = ref 0 and down_res = ref 0 in
    Array.iter
      (fun part ->
        Array.iteri
          (fun l g ->
            if not (Network.link_up part.Shard.net l) then begin
              incr down_links;
              check Alcotest.int "the down link" 3 g
            end)
          part.Shard.links;
        Array.iteri
          (fun l g ->
            if not (Network.res_up part.Shard.net l) then begin
              incr down_res;
              check Alcotest.int "the down res" 5 g
            end)
          part.Shard.ress)
      t.Shard.parts;
    check Alcotest.int "one down link mirrored" 1 !down_links;
    check Alcotest.int "one down res mirrored" 1 !down_res

let test_partition_rejects_circuits () =
  let net = Builders.multiplane ~planes:2 (Builders.omega 4) in
  (match Builders.route_unique net ~proc:0 ~res:1 with
  | Some links -> ignore (Network.establish net links)
  | None -> Alcotest.fail "route on empty net");
  match Shard.partition net with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "partition accepted a network with live circuits"

(* --- Domain_pool ---------------------------------------------------------- *)

let test_pool_run_tasks () =
  List.iter
    (fun workers ->
      let pool = Domain_pool.create workers in
      let n = 97 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Domain_pool.run_tasks pool
        (Array.init n (fun i () -> Atomic.incr hits.(i)));
      Domain_pool.shutdown pool;
      Array.iteri
        (fun i a ->
          check Alcotest.int
            (Printf.sprintf "%d workers: task %d ran once" workers i)
            1 (Atomic.get a))
        hits)
    [ 1; 2; 4 ]

let test_pool_exception () =
  let pool = Domain_pool.create 2 in
  check Alcotest.bool "exception propagates" true
    (try
       Domain_pool.run_tasks pool
         [| (fun () -> ()); (fun () -> failwith "boom"); (fun () -> ()) |];
       false
     with Failure m -> m = "boom");
  (* The pool survives a failed batch. *)
  let ok = ref false in
  Domain_pool.run_tasks pool [| (fun () -> ok := true) |];
  Domain_pool.shutdown pool;
  check Alcotest.bool "pool usable after failure" true !ok

(* --- Serve: merged differential ------------------------------------------- *)

(* One logged pre-commit cycle of one shard, in global terms. *)
type cycle_log = {
  cl_time : int;
  cl_requests : int list;
  cl_free : int list;
  cl_circuits : int list list;
  cl_down_links : int list;
  cl_down_boxes : int list;
  cl_down_res : int list;
  cl_allocated : int;
}

(* Serve a faulty trace and, for every slot where any shard cycled,
   replay the union of the shards' pre-commit snapshots onto a fresh
   copy of the merged network and run one from-scratch Dinic over the
   union request/free sets. Disjointness is what makes Σ per-shard
   allocations equal that single merged max flow; shards that did not
   cycle at the slot contribute zero flow (their pending requests were
   left blocked by their own previous maximal cycle and nothing changed
   since — any state change is an event, and events trigger cycles). *)
let run_merged_differential net ~domains ~seed ~slots ~with_faults =
  let trace =
    let base =
      Workload.synthesize ~deadline_slack:25 ~cancel_prob:0.05
        (Prng.create seed) net ~slots ~arrival_prob:0.3
    in
    if not with_faults then base
    else
      let sched =
        Fault.inject (Prng.create (seed + 1000)) net ~horizon:slots ~mtbf:60.
          ~mttr:8.
      in
      Workload.sort_trace (base @ Workload.fault_events sched)
  in
  let shards_seen = ref 0 in
  let logs = ref [] and logs_mu = Mutex.create () in
  let hook parts ~shard:si snapshot (info : Engine.cycle_info) =
    let part = parts.(si) in
    let glink l = part.Shard.links.(l) in
    let entry =
      {
        cl_time = info.Engine.time;
        cl_requests =
          List.map (fun p -> part.Shard.procs.(p)) info.Engine.requests;
        cl_free = List.map (fun r -> part.Shard.ress.(r)) info.Engine.free;
        cl_circuits =
          List.map
            (fun (_, links) -> List.map glink links)
            (Network.circuits snapshot);
        cl_down_links =
          List.filter_map
            (fun l -> if Network.link_up snapshot l then None else Some (glink l))
            (List.init (Network.n_links snapshot) Fun.id);
        cl_down_boxes =
          List.filter_map
            (fun b ->
              if Network.box_up snapshot b then None
              else Some part.Shard.boxes.(b))
            (List.init (Network.n_boxes snapshot) Fun.id);
        cl_down_res =
          List.filter_map
            (fun r ->
              if Network.res_up snapshot r then None else Some part.Shard.ress.(r))
            (List.init (Network.n_res snapshot) Fun.id);
        cl_allocated = info.Engine.allocated;
      }
    in
    Mutex.lock logs_mu;
    logs := entry :: !logs;
    Mutex.unlock logs_mu
  in
  let report =
    (* The hook needs the shard parts, which create computes — tie the
       knot through a ref; no event is routed before create returns. *)
    let parts = ref [||] in
    let t =
      match
        Serve.create ~domains
          ~cycle_hook:(fun ~shard snapshot info ->
            hook !parts ~shard snapshot info)
          net
      with
      | Error e -> Alcotest.fail e
      | Ok t -> t
    in
    parts := (Serve.shard t).Shard.parts;
    shards_seen := Shard.n_shards (Serve.shard t);
    List.iter (Serve.feed t) trace;
    Serve.drain t;
    Serve.report t
  in
  (* Group cycle logs by slot and compare Σ allocated against one Dinic
     on the reconstructed merged snapshot. *)
  let by_slot = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace by_slot e.cl_time
        (e :: (Option.value ~default:[] (Hashtbl.find_opt by_slot e.cl_time))))
    !logs;
  let cycles_checked = ref 0 in
  Hashtbl.iter
    (fun slot entries ->
      let merged = Network.copy net in
      Network.clear_circuits merged;
      List.iter
        (fun e ->
          List.iter
            (fun links -> ignore (Network.establish_unchecked merged links))
            e.cl_circuits;
          List.iter (fun l -> Network.set_link_up merged l false) e.cl_down_links;
          List.iter (fun b -> Network.set_box_up merged b false) e.cl_down_boxes;
          List.iter (fun r -> Network.set_res_up merged r false) e.cl_down_res)
        entries;
      let requests = List.concat_map (fun e -> e.cl_requests) entries in
      let free = List.concat_map (fun e -> e.cl_free) entries in
      let engine_total =
        List.fold_left (fun acc e -> acc + e.cl_allocated) 0 entries
      in
      let reference = Transform1.schedule merged ~requests ~free in
      cycles_checked := !cycles_checked + List.length entries;
      check Alcotest.int
        (Printf.sprintf "%s seed %d slot %d: merged dinic = shard sum"
           (Network.name net) seed slot)
        reference.Transform1.allocated engine_total)
    by_slot;
  (!cycles_checked, !shards_seen, report)

let test_serve_merged_differential () =
  let total = ref 0 in
  List.iter
    (fun (net, domains) ->
      List.iter
        (fun seed ->
          let cycles, _, report =
            run_merged_differential net ~domains ~seed ~slots:120
              ~with_faults:true
          in
          total := !total + cycles;
          check Alcotest.bool
            (Printf.sprintf "%s seed %d saw cycles" (Network.name net) seed)
            true (cycles > 0);
          check Alcotest.bool "faults were exercised" true
            (report.Serve.faults > 0))
        [ 7; 8 ])
    [
      (Builders.multiplane ~planes:4 (Builders.omega 8), 4);
      (Builders.multiplane ~planes:2 (Builders.clos ~m:3 ~n:2 ~r:3), 2);
      (Builders.multiplane ~planes:3 (Builders.butterfly 8), 3);
    ];
  check Alcotest.bool
    (Printf.sprintf "at least 300 differential cycles overall (got %d)" !total)
    true (!total >= 300)

let test_serve_single_shard_matches_engine () =
  (* On a connected network serve degrades to one shard; its report must
     match the plain engine's on the same trace. *)
  let net = Builders.omega 8 in
  let trace =
    Workload.synthesize (Prng.create 3) net ~slots:80 ~arrival_prob:0.4
  in
  let engine = Engine.run net trace in
  match Serve.run ~domains:1 net trace with
  | Error e -> Alcotest.fail e
  | Ok serve ->
    check Alcotest.int "allocated" engine.Engine.allocated serve.Serve.allocated;
    check Alcotest.int "completed" engine.Engine.completed serve.Serve.completed;
    check Alcotest.int "cycles" engine.Engine.cycles serve.Serve.cycles;
    check Alcotest.int "horizon" engine.Engine.horizon serve.Serve.horizon;
    check Alcotest.int "no borrowing with one shard" 0 serve.Serve.borrows

(* --- Serve: domain determinism -------------------------------------------- *)

let serve_trajectory net ~domains trace =
  let cells = Array.make 64 [] in
  (* Per-shard buffers: hooks only append to their own cell, so the
     parallel advance phase never races. *)
  let t =
    match
      Serve.create ~domains
        ~cycle_hook:(fun ~shard _snapshot info ->
          cells.(shard) <-
            (info.Engine.time, info.Engine.allocated) :: cells.(shard))
        net
    with
    | Error e -> Alcotest.fail e
    | Ok t -> t
  in
  List.iter (Serve.feed t) trace;
  Serve.drain t;
  let report = Serve.report t in
  let trajectory =
    Array.to_list cells
    |> List.mapi (fun si entries ->
           List.rev_map (fun (time, n) -> (si, time, n)) entries)
    |> List.concat
    |> List.sort compare
  in
  (trajectory, report)

let determinism_arb =
  QCheck.make
    ~print:(fun (topo, seed, prob) ->
      Printf.sprintf "topo=%d seed=%d arrival=%.2f" topo seed prob)
    QCheck.Gen.(
      triple (int_range 0 2) (int_range 0 1000)
        (map (fun p -> float_of_int p /. 100.) (int_range 20 50)))

let test_determinism_qcheck =
  QCheck.Test.make ~count:8 ~name:"domains=1 and domains=N trajectories agree"
    determinism_arb (fun (topo, seed, prob) ->
      let net =
        match topo with
        | 0 -> Builders.multiplane ~planes:4 (Builders.omega 8)
        | 1 -> Builders.multiplane ~planes:3 (Builders.butterfly 8)
        | _ -> Builders.multiplane ~planes:2 (Builders.clos ~m:3 ~n:2 ~r:3)
      in
      let slots = 110 in
      let trace =
        let base =
          Workload.synthesize ~deadline_slack:20 ~cancel_prob:0.05
            (Prng.create seed) net ~slots ~arrival_prob:prob
        in
        let sched =
          Fault.inject (Prng.create (seed + 17)) net ~horizon:slots ~mtbf:70.
            ~mttr:10.
        in
        Workload.sort_trace (base @ Workload.fault_events sched)
      in
      let t1, r1 = serve_trajectory net ~domains:1 trace in
      let t4, r4 = serve_trajectory net ~domains:4 trace in
      (* The shard layout is by component, independent of the domain
         count, so the trajectories must agree cycle for cycle — shard
         ids included. *)
      if t1 <> t4 then
        QCheck.Test.fail_reportf "trajectories diverge (%d vs %d cycles)"
          (List.length t1) (List.length t4);
      (* ...and so must the merged accounting, modulo wall time and the
         pool size actually granted. *)
      r1.Serve.allocated = r4.Serve.allocated
      && r1.Serve.completed = r4.Serve.completed
      && r1.Serve.cycles = r4.Serve.cycles
      && r1.Serve.borrows = r4.Serve.borrows
      && r1.Serve.starved = r4.Serve.starved
      && r1.Serve.faults = r4.Serve.faults
      && r1.Serve.victims = r4.Serve.victims)

(* --- Serve: borrowing ------------------------------------------------------ *)

let test_serve_borrowing () =
  (* Two Omega-4 planes. Saturate plane 0's four resource ports with
     long-service tasks, then land one more arrival on plane 0: the
     router must re-target it to idle plane 1 instead of queueing it. *)
  let net = Builders.multiplane ~planes:2 (Builders.omega 4) in
  let arrive t id proc service =
    Workload.Arrive { t; id; proc; service; deadline = None; priority = 0 }
  in
  let trace =
    [
      arrive 0 0 0 50; arrive 0 1 1 50; arrive 0 2 2 50; arrive 0 3 3 50;
      arrive 3 4 0 5;
    ]
  in
  match Serve.run ~domains:2 net trace with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check Alcotest.int "the overflow arrival was borrowed" 1 r.Serve.borrows;
    check Alcotest.int "all five tasks got circuits" 5 r.Serve.allocated;
    check Alcotest.int "nothing starved" 0 r.Serve.starved

let test_serve_starvation () =
  (* Same setup but both planes saturated: no donor has headroom, so the
     overflow arrival stays home and is counted as starved. *)
  let net = Builders.multiplane ~planes:2 (Builders.omega 4) in
  let arrive t id proc service =
    Workload.Arrive { t; id; proc; service; deadline = None; priority = 0 }
  in
  let trace =
    List.init 8 (fun p -> arrive 0 p p 50) @ [ arrive 3 100 0 5 ]
  in
  match Serve.run ~domains:2 net trace with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check Alcotest.int "no donor found" 0 r.Serve.borrows;
    check Alcotest.int "one starved arrival" 1 r.Serve.starved;
    (* The starved arrival queues at home and is served once the pool
       frees up — all nine tasks get circuits eventually. *)
    check Alcotest.int "all nine circuits eventually" 9 r.Serve.allocated

let test_serve_rejects_token () =
  let net = Builders.multiplane ~planes:2 (Builders.omega 4) in
  match
    Serve.create ~config:(Engine.Config.v ~mode:Engine.Token ()) ~domains:2 net
  with
  | Error e ->
    check Alcotest.bool "error names token mode" true
      (String.length e >= 12 && String.sub e 0 12 = "Serve.create")
  | Ok _ -> Alcotest.fail "serve accepted token mode"

let suite =
  [
    Alcotest.test_case "multiplane shape and isolation" `Quick
      test_multiplane_shape;
    Alcotest.test_case "multiplane flow decomposes" `Quick
      test_multiplane_flow_decomposes;
    Alcotest.test_case "multiplane invalid inputs" `Quick
      test_multiplane_invalid;
    Alcotest.test_case "partition by plane" `Quick test_partition_planes;
    Alcotest.test_case "partition LPT packing" `Quick test_partition_packing;
    Alcotest.test_case "partition connected -> one shard" `Quick
      test_partition_connected_single;
    Alcotest.test_case "partition mirrors health" `Quick
      test_partition_health_mirror;
    Alcotest.test_case "partition rejects live circuits" `Quick
      test_partition_rejects_circuits;
    Alcotest.test_case "domain pool runs every task once" `Quick
      test_pool_run_tasks;
    Alcotest.test_case "domain pool propagates exceptions" `Quick
      test_pool_exception;
    Alcotest.test_case "serve merged differential vs dinic" `Slow
      test_serve_merged_differential;
    Alcotest.test_case "serve single shard = plain engine" `Quick
      test_serve_single_shard_matches_engine;
    QCheck_alcotest.to_alcotest ~long:true test_determinism_qcheck;
    Alcotest.test_case "borrowing re-targets overflow" `Quick
      test_serve_borrowing;
    Alcotest.test_case "starvation when no donor" `Quick test_serve_starvation;
    Alcotest.test_case "token mode rejected" `Quick test_serve_rejects_token;
  ]
