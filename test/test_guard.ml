(* Tests for the robustness guard layer (lib/guard) and its engine
   integration: policy validation and JSON round-trips, the
   deterministic backoff schedule, the flap detector, admission
   control, retry budgets, quarantine, the conservation accounting
   invariant, engine/serve checkpoint-restore differentials, and a
   qcheck storm over three sharded topologies where donor elements
   fault in the same slots borrows are decided. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Workload = Rsin_sim.Workload
module Fault = Rsin_fault.Fault
module Engine = Rsin_engine.Engine
module Serve = Rsin_engine.Serve
module Shard = Rsin_engine.Shard
module Chaos = Rsin_engine.Chaos
module Policy = Rsin_guard.Policy
module Retry = Rsin_guard.Retry
module Flap = Rsin_guard.Flap
module Prng = Rsin_util.Prng
module Json = Rsin_util.Json

let check = Alcotest.check

let get_ok ~what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* --- Policy ---------------------------------------------------------------- *)

let test_policy_validation () =
  let bad ?queue_bound ?retry_base ?retry_cap ?retry_jitter ?retry_budget
      ?flap_k ?flap_window ?quarantine_slots what =
    match
      Policy.make ?queue_bound ?retry_base ?retry_cap ?retry_jitter
        ?retry_budget ?flap_k ?flap_window ?quarantine_slots ()
    with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  bad ~queue_bound:(-1) "queue_bound -1";
  bad ~retry_base:0 "retry_base 0";
  bad ~retry_base:8 ~retry_cap:4 "cap < base";
  bad ~retry_jitter:(-1) "retry_jitter -1";
  bad ~retry_budget:(-1) "retry_budget -1";
  bad ~flap_k:(-1) "flap_k -1";
  bad ~flap_window:0 "flap_window 0";
  bad ~quarantine_slots:0 "quarantine_slots 0";
  let p = Policy.v () in
  check Alcotest.int "default queue bound" 64 p.Policy.queue_bound;
  check Alcotest.bool "default sheds drop-tail" true
    (p.Policy.shed_policy = Policy.Drop_tail)

let test_policy_json_roundtrip () =
  let p =
    Policy.v ~queue_bound:7 ~shed_policy:Policy.Deadline_aware ~retry_base:2
      ~retry_cap:32 ~retry_jitter:5 ~retry_budget:4 ~seed:99 ~flap_k:2
      ~flap_window:30 ~quarantine_slots:80 ()
  in
  let p' = get_ok ~what:"of_json" (Policy.of_json (Policy.to_json p)) in
  check Alcotest.bool "round trip" true (p = p');
  (match Policy.of_json (Json.Str "nope") with
  | Ok _ -> Alcotest.fail "bad shape accepted"
  | Error _ -> ());
  (* A config with a guard embeds the policy and round-trips too. *)
  let cfg = Engine.Config.v ~guard:(Some p) () in
  let cfg' =
    get_ok ~what:"config of_json" (Engine.Config.of_json (Engine.Config.to_json cfg))
  in
  check Alcotest.bool "config round trip keeps guard" true
    (cfg'.Engine.Config.guard = Some p)

(* --- Retry ----------------------------------------------------------------- *)

let test_retry_delay () =
  let p = Policy.v ~retry_base:2 ~retry_cap:16 ~retry_jitter:3 ~seed:5 () in
  for task_id = 0 to 20 do
    for attempt = 0 to 8 do
      let d = Retry.delay p ~task_id ~attempt in
      let base = min 16 (2 * (1 lsl attempt)) in
      check Alcotest.bool
        (Printf.sprintf "task %d attempt %d in bounds" task_id attempt)
        true
        (d >= max 1 base && d <= base + 3);
      check Alcotest.int "deterministic" d (Retry.delay p ~task_id ~attempt)
    done
  done;
  (* Jitter de-synchronizes: not every task gets the same delay. *)
  let ds =
    List.init 32 (fun task_id -> Retry.delay p ~task_id ~attempt:0)
  in
  check Alcotest.bool "jitter spreads delays" true
    (List.exists (fun d -> d <> List.hd ds) ds)

(* --- Flap ------------------------------------------------------------------ *)

let test_flap_detector () =
  let p = Policy.v ~flap_k:3 ~flap_window:10 ~quarantine_slots:25 () in
  let f = Flap.create p in
  let link7 = Fault.Link 7 in
  check Alcotest.bool "1st fault" true (Flap.record_fault f ~now:0 link7 = None);
  check Alcotest.bool "2nd fault" true (Flap.record_fault f ~now:4 link7 = None);
  check Alcotest.bool "3rd fault triggers" true
    (Flap.record_fault f ~now:8 link7 = Some 33);
  check Alcotest.bool "quarantined" true (Flap.is_quarantined f link7);
  (* While quarantined, further faults don't re-trigger. *)
  check Alcotest.bool "no double trigger" true
    (Flap.record_fault f ~now:9 link7 = None);
  Flap.release f link7;
  check Alcotest.bool "released" false (Flap.is_quarantined f link7);
  (* Sparse faults outside the window never trigger. *)
  let box2 = Fault.Box 2 in
  check Alcotest.bool "sparse 1" true (Flap.record_fault f ~now:0 box2 = None);
  check Alcotest.bool "sparse 2" true (Flap.record_fault f ~now:20 box2 = None);
  check Alcotest.bool "sparse 3" true (Flap.record_fault f ~now:40 box2 = None);
  check Alcotest.bool "sparse not quarantined" false (Flap.is_quarantined f box2)

let test_flap_json_roundtrip () =
  let p = Policy.v ~flap_k:3 ~flap_window:10 ~quarantine_slots:25 () in
  let f = Flap.create p in
  ignore (Flap.record_fault f ~now:1 (Fault.Link 3));
  ignore (Flap.record_fault f ~now:2 (Fault.Link 3));
  ignore (Flap.record_fault f ~now:3 (Fault.Res 1));
  ignore (Flap.record_fault f ~now:3 (Fault.Link 3)) |> ignore;
  let f' = get_ok ~what:"Flap.of_json" (Flap.of_json p (Flap.to_json f)) in
  check Alcotest.bool "active sets agree" true (Flap.active f = Flap.active f');
  (* The restored detector continues the same in-progress window. *)
  check Alcotest.bool "window continues" true
    (Flap.record_fault f ~now:4 (Fault.Res 1)
    = Flap.record_fault f' ~now:4 (Fault.Res 1))

(* --- Engine integration ---------------------------------------------------- *)

let overload_trace net ~slots =
  Workload.synthesize ~mean_service:4.0 ~deadline_slack:8
    (Prng.create 11) net ~slots ~arrival_prob:0.9

let guarded_config ?(policy = Policy.v ~queue_bound:2 ~retry_budget:2 ()) () =
  Engine.Config.v ~guard:(Some policy) ()

let test_admission_sheds () =
  let net = Builders.omega 8 in
  let trace = overload_trace net ~slots:60 in
  let r = Engine.run ~config:(guarded_config ()) net trace in
  check Alcotest.bool "overload sheds" true (r.Engine.shed > 0);
  (* Terminal buckets plus pending cover every arrival. *)
  check Alcotest.int "arrivals conserved" r.Engine.arrivals
    (r.Engine.completed + r.Engine.cancelled + r.Engine.expired
   + r.Engine.shed + r.Engine.given_up + r.Engine.left_pending)

let test_deadline_aware_sheds_least_slack () =
  (* Proc 0's circuit is pinned for 10 slots (transmission_time), so the
     t=1 near-deadline resident can't be served. The t=2 newcomer (far
     deadline) overflows the bound-1 queue: Deadline_aware sheds the
     resident (least slack) and the newcomer later completes;
     Drop_tail sheds the newcomer and the resident expires at slot 5. *)
  let mk id t service deadline =
    Workload.Arrive { t; id; proc = 0; service; deadline = Some deadline;
                      priority = 0 }
  in
  let trace = [ mk 0 0 2 100; mk 1 1 1 5; mk 2 2 1 80 ] in
  let run shed_policy =
    let policy = Policy.v ~queue_bound:1 ~shed_policy () in
    let cfg = Engine.Config.v ~transmission_time:10 ~guard:(Some policy) () in
    Engine.run ~config:cfg (Builders.omega 4) trace
  in
  let da = run Policy.Deadline_aware and dt = run Policy.Drop_tail in
  check Alcotest.int "deadline-aware sheds one" 1 da.Engine.shed;
  check Alcotest.int "drop-tail sheds one" 1 dt.Engine.shed;
  (* Under drop-tail the near-deadline resident stays queued and
     expires; deadline-aware shed it instead, so nothing expires and
     the spared newcomer completes. *)
  check Alcotest.int "drop-tail lets it expire" 1 dt.Engine.expired;
  check Alcotest.int "deadline-aware saved the expiry" 0 da.Engine.expired;
  check Alcotest.int "deadline-aware completes both others" 2 da.Engine.completed;
  check Alcotest.int "drop-tail completes only the first" 1 dt.Engine.completed

let fault_trace net ~slots ~seed =
  let trace =
    Workload.synthesize ~mean_service:4.0 (Prng.create seed) net ~slots
      ~arrival_prob:0.4
  in
  let frng = Prng.split (Prng.create seed) in
  let fevents =
    Workload.fault_events
      (Fault.inject frng net ~horizon:slots ~mtbf:15.0 ~mttr:5.0)
  in
  Workload.sort_trace (trace @ fevents)

let test_retry_budget_gives_up () =
  let net = Builders.omega 8 in
  let trace = fault_trace net ~slots:150 ~seed:3 in
  let run budget =
    let policy = Policy.v ~queue_bound:0 ~retry_budget:budget ~flap_k:0 () in
    Engine.run ~config:(guarded_config ~policy ()) net
         (List.map
            (function
              | Workload.Arrive a -> Workload.Arrive { a with deadline = None }
              | e -> e)
            trace)
  in
  let generous = run 64 and strict = run 0 in
  check Alcotest.bool "storm victimizes" true (generous.Engine.victims > 0);
  check Alcotest.bool "generous budget retries" true (generous.Engine.retries > 0);
  check Alcotest.int "generous budget never gives up" 0 generous.Engine.given_up;
  check Alcotest.bool "zero budget gives up on first victimization" true
    (strict.Engine.given_up > 0);
  check Alcotest.int "strict run schedules no retries" 0 strict.Engine.retries

let test_quarantine_counts () =
  let net = Builders.omega 8 in
  let trace = fault_trace net ~slots:150 ~seed:7 in
  let policy = Policy.v ~flap_k:1 ~flap_window:10 ~quarantine_slots:12 () in
  let r = Engine.run ~config:(guarded_config ~policy ()) net trace in
  check Alcotest.bool "flaps quarantine" true (r.Engine.quarantines > 0);
  (* flap_k = 0 disables the detector entirely. *)
  let off = Policy.v ~flap_k:0 () in
  let r0 = Engine.run ~config:(guarded_config ~policy:off ()) net trace in
  check Alcotest.int "flap_k 0 never quarantines" 0 r0.Engine.quarantines

let test_guard_off_is_legacy () =
  (* A fault-free workload served with and without a guard must follow
     the identical trajectory: admission never triggers below the
     bound, and retries/quarantine only exist under faults. *)
  let net () = Builders.omega 8 in
  let trace =
    Workload.synthesize ~mean_service:3.0 ~cancel_prob:0.1 (Prng.create 5)
      (net ()) ~slots:80 ~arrival_prob:0.3
  in
  let traj cfg =
    let log = Buffer.create 256 in
    let hook _net (i : Engine.cycle_info) =
      Buffer.add_string log
        (Printf.sprintf "%d:%d;" i.Engine.time i.Engine.allocated)
    in
    let e = Engine.create ~config:cfg ~cycle_hook:hook (net ()) in
    List.iter (Engine.feed e) trace;
    Engine.drain e;
    (Buffer.contents log, Engine.report e)
  in
  let l1, r1 = traj (Engine.Config.v ()) in
  let l2, r2 = traj (guarded_config ~policy:(Policy.v ()) ()) in
  check Alcotest.string "trajectories identical" l1 l2;
  check Alcotest.int "completed identical" r1.Engine.completed r2.Engine.completed;
  check Alcotest.int "no shed" 0 r2.Engine.shed;
  check Alcotest.int "no retries" 0 r2.Engine.retries

let test_accounting_every_slot () =
  let net = Builders.omega 8 in
  let trace = fault_trace net ~slots:120 ~seed:9 in
  let policy = Policy.v ~queue_bound:3 ~retry_budget:2 ~flap_k:2 ~flap_window:20 () in
  let cfg = guarded_config ~policy () in
  let cell = ref None in
  let hook ~events:_ ~time:_ =
    match !cell with
    | None -> ()
    | Some e -> (
      match Engine.check_accounting e with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "accounting: %s" msg)
  in
  let e = Engine.create ~config:cfg ~event_hook:hook net in
  cell := Some e;
  List.iter (Engine.feed e) trace;
  Engine.drain e;
  (match Engine.check_accounting e with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "final accounting: %s" msg);
  let a = Engine.accounting e in
  check Alcotest.int "drained: nothing parked" 0 a.Engine.a_parked;
  check Alcotest.int "drained: nothing in flight" 0 a.Engine.a_in_flight

(* --- Checkpoint / restore -------------------------------------------------- *)

let test_engine_checkpoint_differential () =
  (* Kill the engine mid-run at slot K, restore from the snapshot's
     actual serialized bytes, feed the rest: trajectory and final
     report must be byte-identical to the uninterrupted run. *)
  let kill_at = 60 in
  let net () = Builders.omega 8 in
  let trace = fault_trace (net ()) ~slots:120 ~seed:13 in
  let policy = Policy.v ~queue_bound:4 ~retry_budget:3 ~flap_k:2 ~flap_window:25 () in
  let cfg = guarded_config ~policy () in
  let early, late =
    List.partition (fun e -> Workload.event_time e <= kill_at) trace
  in
  let log = Buffer.create 256 in
  let hook _net (i : Engine.cycle_info) =
    Buffer.add_string log
      (Printf.sprintf "%d:%d:%s;" i.Engine.time i.Engine.allocated
         (String.concat ","
            (List.map
               (fun (p, r) -> Printf.sprintf "%d>%d" p r)
               i.Engine.mapping)))
  in
  (* Uninterrupted. *)
  let e = Engine.create ~config:cfg ~cycle_hook:hook (net ()) in
  List.iter (Engine.feed e) trace;
  Engine.drain e;
  let full_log = Buffer.contents log and full_report = Engine.report e in
  (* Killed + restored. *)
  Buffer.clear log;
  let e1 = Engine.create ~config:cfg ~cycle_hook:hook (net ()) in
  List.iter (Engine.feed e1) early;
  Engine.advance e1 ~upto:kill_at;
  let bytes = Json.to_string (Engine.snapshot e1) in
  let j = get_ok ~what:"parse checkpoint" (Json.parse bytes) in
  let e2 = get_ok ~what:"restore" (Engine.restore ~cycle_hook:hook (net ()) j) in
  List.iter (Engine.feed e2) late;
  Engine.drain e2;
  check Alcotest.string "trajectory identical" full_log (Buffer.contents log);
  check Alcotest.bool "report identical" true (full_report = Engine.report e2);
  (match Engine.check_accounting e2 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "restored accounting: %s" msg)

let test_restore_rejects_garbage () =
  let net = Builders.omega 4 in
  (match Engine.restore net (Json.Str "nope") with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (match Engine.restore net (Json.Obj [ ("schema", Json.Str "wrong/v9") ]) with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error _ -> ());
  (* A snapshot of one topology must not restore onto another. *)
  let e = Engine.create (Builders.omega 8) in
  let j = Engine.snapshot e in
  match Engine.restore net j with
  | Ok _ -> Alcotest.fail "wrong topology accepted"
  | Error _ -> ()

let test_serve_checkpoint_differential () =
  (* Same differential through the sharded server, checkpointing on a
     slot boundary via the event hook path the CLI uses. *)
  let kill_at = 40 in
  let net () = Builders.multiplane ~planes:2 (Builders.omega 8) in
  let trace = fault_trace (net ()) ~slots:80 ~seed:17 in
  let policy = Policy.v ~queue_bound:4 ~retry_budget:3 ~flap_k:2 ~flap_window:25 () in
  let cfg = Engine.Config.v ~guard:(Some policy) () in
  let early, late =
    List.partition (fun e -> Workload.event_time e <= kill_at) trace
  in
  let full =
    get_ok ~what:"full run" (Serve.run ~config:cfg ~domains:2 (net ()) trace)
  in
  let t1 =
    get_ok ~what:"create" (Serve.create ~config:cfg ~domains:2 (net ()))
  in
  List.iter (Serve.feed t1) early;
  let bytes = Json.to_string (Serve.snapshot t1) in
  Serve.abort t1;
  let j = get_ok ~what:"parse" (Json.parse bytes) in
  let t2 = get_ok ~what:"restore" (Serve.restore ~domains:2 (net ()) j) in
  List.iter (Serve.feed t2) late;
  Serve.drain t2;
  (match Serve.check_accounting t2 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "restored accounting: %s" msg);
  let r = Serve.report t2 in
  check Alcotest.int "completed identical" full.Serve.completed r.Serve.completed;
  check Alcotest.int "allocated identical" full.Serve.allocated r.Serve.allocated;
  check Alcotest.int "victims identical" full.Serve.victims r.Serve.victims;
  check Alcotest.int "retries identical" full.Serve.retries r.Serve.retries;
  check Alcotest.int "shed identical" full.Serve.shed r.Serve.shed;
  check Alcotest.int "quarantines identical" full.Serve.quarantines
    r.Serve.quarantines

(* --- Borrowing under donor faults (qcheck, 3 topologies) ------------------- *)

let borrow_storm_topologies =
  [ (0, fun () -> Builders.multiplane ~planes:2 (Builders.omega 8));
    (1, fun () -> Builders.multiplane ~planes:3 (Builders.omega 4));
    (2, fun () -> Builders.multiplane ~planes:2 (Builders.clos ~m:3 ~n:4 ~r:4)) ]

let test_borrow_donor_fault_qcheck =
  QCheck.Test.make ~count:12
    ~name:"borrowing stays deterministic and conserved when donors fault"
    QCheck.(pair (int_range 0 2) (int_range 0 1000))
    (fun (which, seed) ->
      let _, mk = List.nth borrow_storm_topologies which in
      let net = mk () in
      (* Saturate plane 0 (every arrival lands there) so the router must
         borrow from the other plane(s), and storm every element with a
         short MTBF so donor elements keep faulting in the very slots
         borrows are decided. *)
      let slots = 60 in
      let base =
        Workload.synthesize ~mean_service:5.0 (Prng.create seed) net ~slots
          ~arrival_prob:0.9
      in
      let plane0 = Network.n_procs net / Shard.components net in
      let crowded =
        List.filter_map
          (function
            | Workload.Arrive { proc; _ } when proc >= plane0 -> None
            | e -> Some e)
          base
      in
      let frng = Prng.split (Prng.create seed) in
      let fevents =
        Workload.fault_events
          (Fault.inject frng net ~horizon:slots ~mtbf:8.0 ~mttr:3.0)
      in
      let trace = Workload.sort_trace (crowded @ fevents) in
      let policy = Policy.v ~queue_bound:6 ~retry_budget:2 ~flap_k:2 ~flap_window:15 () in
      let cfg = Engine.Config.v ~guard:(Some policy) () in
      let run domains =
        match Serve.run ~config:cfg ~domains net trace with
        | Ok r -> r
        | Error msg -> QCheck.Test.fail_reportf "serve: %s" msg
      in
      let r1 = run 1 and r2 = run 2 in
      (* Borrows occur in most storms (the deterministic test below
         pins one); here the property is that whatever happened stayed
         deterministic and conserved. *)
      (* Domain count must not perturb anything. *)
      if
        r1.Serve.allocated <> r2.Serve.allocated
        || r1.Serve.borrows <> r2.Serve.borrows
        || r1.Serve.completed <> r2.Serve.completed
        || r1.Serve.victims <> r2.Serve.victims
        || r1.Serve.shed <> r2.Serve.shed
        || r1.Serve.retries <> r2.Serve.retries
      then QCheck.Test.fail_reportf "domains=1 vs 2 diverge (seed %d)" seed;
      (* Conservation across shards, faults and borrows included. *)
      r1.Serve.arrivals
      = r1.Serve.completed + r1.Serve.cancelled + r1.Serve.expired
        + r1.Serve.shed + r1.Serve.given_up + r1.Serve.left_pending)

let test_borrow_donor_faults_same_slot () =
  (* Pin the exact race the qcheck storm samples: plane 0's resources
     are all pinned by slot-0 long transmissions, so the slot-2 arrival
     at proc 0 must borrow from plane 1 — and in that same slot a
     plane-1 link and a plane-1 resource port fault. The router decides
     the borrow on state complete through slot 1 (donor healthy), the
     donor's fault applies within slot 2: the borrowed circuit may be
     torn down the moment it exists. Whatever happens must be the same
     at every domain count and conserve every arrival. *)
  let base = Builders.omega 4 in
  let net () = Builders.multiplane ~planes:2 base in
  let arrive id t proc service =
    Workload.Arrive { t; id; proc; service; deadline = None; priority = 0 }
  in
  let fault element = Workload.Fault { t = 2; clock = None; element } in
  let trace =
    [ arrive 0 0 0 50; arrive 1 0 1 50; arrive 2 0 2 50; arrive 3 0 3 50;
      fault (Fault.Link (Network.n_links base + 1));
      fault (Fault.Res 5);
      arrive 10 2 0 3 ]
  in
  let policy = Policy.v ~queue_bound:8 ~retry_budget:3 ~flap_k:2 ~flap_window:20 () in
  let cfg = Engine.Config.v ~guard:(Some policy) () in
  let run domains =
    get_ok ~what:"serve" (Serve.run ~config:cfg ~domains (net ()) trace)
  in
  let r1 = run 1 and r2 = run 2 in
  check Alcotest.bool "exhausted home borrows" true (r1.Serve.borrows >= 1);
  check Alcotest.bool "donor fault applied" true (r1.Serve.faults >= 2);
  check Alcotest.int "borrows agree across domains" r1.Serve.borrows r2.Serve.borrows;
  check Alcotest.int "completed agree across domains" r1.Serve.completed
    r2.Serve.completed;
  check Alcotest.int "victims agree across domains" r1.Serve.victims
    r2.Serve.victims;
  check Alcotest.int "arrivals conserved" r1.Serve.arrivals
    (r1.Serve.completed + r1.Serve.cancelled + r1.Serve.expired + r1.Serve.shed
   + r1.Serve.given_up + r1.Serve.left_pending)

(* --- Chaos harness (quick) ------------------------------------------------- *)

let test_chaos_quick () =
  (* The full soak is the CI step; here a tiny seeded storm proves the
     harness end to end, including the kill/restore differential and
     the report document. *)
  let outcomes = get_ok ~what:"chaos" (Chaos.run ~quick:true ~slots:40 ()) in
  check Alcotest.int "three topologies" 3 (List.length outcomes);
  List.iter
    (fun (o : Chaos.outcome) ->
      check Alcotest.bool (o.Chaos.topology ^ ": checks ran") true
        (o.Chaos.checks > 0);
      check Alcotest.bool (o.Chaos.topology ^ ": restore identical") true
        o.Chaos.restore_identical;
      check Alcotest.bool (o.Chaos.topology ^ ": corrupted lines dropped") true
        (o.Chaos.stream_errors > 0))
    outcomes;
  let j = Chaos.report_json outcomes in
  let field k =
    match Json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "report missing %s" k
  in
  check Alcotest.string "report schema" "rsin-chaos-report/v1"
    (Option.value ~default:"?" (Json.to_str (field "schema")));
  check Alcotest.int "report rows" 3
    (List.length (Option.value ~default:[] (Json.to_list (field "topologies"))))

let suite =
  [ Alcotest.test_case "policy validation" `Quick test_policy_validation;
    Alcotest.test_case "policy json round trip" `Quick test_policy_json_roundtrip;
    Alcotest.test_case "retry delay" `Quick test_retry_delay;
    Alcotest.test_case "flap detector" `Quick test_flap_detector;
    Alcotest.test_case "flap json round trip" `Quick test_flap_json_roundtrip;
    Alcotest.test_case "admission sheds under overload" `Quick test_admission_sheds;
    Alcotest.test_case "deadline-aware shedding" `Quick
      test_deadline_aware_sheds_least_slack;
    Alcotest.test_case "retry budget gives up" `Quick test_retry_budget_gives_up;
    Alcotest.test_case "flap quarantine counts" `Quick test_quarantine_counts;
    Alcotest.test_case "guard off is legacy" `Quick test_guard_off_is_legacy;
    Alcotest.test_case "accounting holds every slot" `Quick
      test_accounting_every_slot;
    Alcotest.test_case "engine checkpoint differential" `Quick
      test_engine_checkpoint_differential;
    Alcotest.test_case "restore rejects garbage" `Quick test_restore_rejects_garbage;
    Alcotest.test_case "serve checkpoint differential" `Quick
      test_serve_checkpoint_differential;
    Alcotest.test_case "borrow while donor faults same slot" `Quick
      test_borrow_donor_faults_same_slot;
    QCheck_alcotest.to_alcotest test_borrow_donor_fault_qcheck;
    Alcotest.test_case "chaos harness quick" `Slow test_chaos_quick ]
