(* Whole-pipeline integration properties: random network, random
   operation sequences, every scheduler — nothing may crash, and the
   global circuit-switching invariants must hold throughout. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module T1 = Rsin_core.Transform1
module T2 = Rsin_core.Transform2
module Heuristic = Rsin_core.Heuristic
module Token_sim = Rsin_distributed.Token_sim
module Workload = Rsin_sim.Workload
module Dynamic = Rsin_sim.Dynamic
module Prng = Rsin_util.Prng

let qtest name ?(count = 60) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let any_network rng =
  match Prng.int rng 12 with
  | 0 -> Builders.omega 8
  | 1 -> Builders.omega_paper 8
  | 2 -> Builders.butterfly 8
  | 3 -> Builders.baseline 8
  | 4 -> Builders.benes 8
  | 5 -> Builders.gamma 8
  | 6 -> Builders.adm 8
  | 7 -> Builders.flip 8
  | 8 -> Builders.extra_stage_omega 8 ~extra:1
  | 9 -> Builders.clos ~m:2 ~n:2 ~r:4
  | 10 -> Builders.delta_ab ~a:4 ~b:2 ~stages:2
  | _ -> Builders.crossbar ~n_procs:8 ~n_res:8

(* Invariants of the circuit-switched state. *)
let invariants net =
  let nl = Network.n_links net in
  let live = Network.circuits net in
  (* every occupied link belongs to exactly one live circuit *)
  let owner = Hashtbl.create 16 in
  List.for_all
    (fun (id, links) ->
      List.for_all
        (fun l ->
          (not (Hashtbl.mem owner l))
          && (Hashtbl.replace owner l id;
              Network.link_state net l = Network.Occupied id))
        links)
    live
  && List.init nl Fun.id
     |> List.for_all (fun l ->
            match Network.link_state net l with
            | Network.Free -> not (Hashtbl.mem owner l)
            | Network.Occupied id -> Hashtbl.find_opt owner l = Some id)

let chaos =
  qtest "random op sequences preserve network invariants" ~count:80
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let net = any_network rng in
      let live_ids = ref [] in
      let ok = ref true in
      for _ = 1 to 20 do
        (match Prng.int rng 6 with
        | 0 -> ignore (Workload.preoccupy rng net ~circuits:1)
        | 1 -> ignore (Workload.fail_links rng net ~count:1)
        | 2 -> begin
          (* optimal schedule + commit *)
          let busy_p, busy_r = Workload.occupied_endpoints net in
          let requests, free = Workload.snapshot rng net in
          let requests = List.filter (fun p -> not (List.mem p busy_p)) requests in
          let free = List.filter (fun r -> not (List.mem r busy_r)) free in
          if requests <> [] && free <> [] then begin
            let o = T1.schedule net ~requests ~free in
            live_ids := T1.commit net o @ !live_ids
          end
        end
        | 3 -> begin
          (* distributed schedule + commit *)
          let busy_p, busy_r = Workload.occupied_endpoints net in
          let requests, free = Workload.snapshot rng net in
          let requests = List.filter (fun p -> not (List.mem p busy_p)) requests in
          let free = List.filter (fun r -> not (List.mem r busy_r)) free in
          if requests <> [] && free <> [] then begin
            let d = Token_sim.run net ~requests ~free in
            live_ids := Token_sim.commit net d @ !live_ids
          end
        end
        | 4 -> begin
          (* release a random circuit *)
          match !live_ids with
          | [] -> ()
          | ids ->
            let id = List.nth ids (Prng.int rng (List.length ids)) in
            Network.release net id;
            live_ids := List.filter (( <> ) id) !live_ids
        end
        | _ -> begin
          (* heuristic schedule on a scratch copy must not disturb net *)
          let requests, free = Workload.snapshot rng net in
          if requests <> [] && free <> [] then
            ignore
              (Heuristic.schedule net ~requests ~free
                 (Heuristic.Random_fit rng))
        end);
        if not (invariants net) then ok := false
      done;
      !ok)

(* After arbitrary occupancy, all four scheduling paths agree on the
   allocation count (the optimum is the optimum no matter who computes
   it), and prioritized scheduling allocates just as many. *)
let schedulers_agree_under_chaos =
  qtest "all optimal schedulers agree under arbitrary occupancy" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let net = any_network rng in
      ignore (Workload.preoccupy rng net ~circuits:(Prng.int rng 3));
      ignore (Workload.fail_links rng net ~count:(Prng.int rng 3));
      let busy_p, busy_r = Workload.occupied_endpoints net in
      let requests, free = Workload.snapshot rng net in
      let requests = List.filter (fun p -> not (List.mem p busy_p)) requests in
      let free = List.filter (fun r -> not (List.mem r busy_r)) free in
      if requests = [] || free = [] then true
      else begin
        (* Every registry solver (including the min-cost backends) must
           find the same max-flow value on the same instance. *)
        let allocs =
          List.map
            (fun s ->
              (T1.solve_with s (T1.build net ~requests ~free)).T1.allocated)
            Rsin_flow.Solver.all
        in
        let a = List.hd allocs in
        let d = (Token_sim.run net ~requests ~free).Token_sim.allocated in
        let reqs2 = List.map (fun p -> (p, 1 + Prng.int rng 5)) requests in
        let free2 = List.map (fun r -> (r, 1 + Prng.int rng 5)) free in
        let e = (T2.schedule net ~requests:reqs2 ~free:free2).T2.allocated in
        List.for_all (fun x -> x = a) allocs && a = d && d = e
      end)

(* Dynamic soak: conservation between arrivals, completions and the
   backlog, across random parameters and schedulers. *)
let dynamic_soak =
  qtest "dynamic simulation conserves tasks" ~count:25 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let net = if Prng.bool rng then Builders.omega 8 else Builders.omega 16 in
      let scheduler =
        match Prng.int rng 3 with
        | 0 -> Dynamic.Optimal
        | 1 -> Dynamic.First_fit
        | _ -> Dynamic.Distributed
      in
      let params =
        { Dynamic.arrival_prob = 0.02 +. Prng.float rng 0.25;
          transmission_time = 1 + Prng.int rng 3;
          mean_service = 1. +. Prng.float rng 6.;
          slots = 800; warmup = 200 }
      in
      let m = Dynamic.run ~scheduler rng net params in
      m.Dynamic.throughput >= 0.
      && m.Dynamic.resource_utilization >= 0.
      && m.Dynamic.resource_utilization <= 1.0 +. 1e-9
      (* completions cannot exceed offered work plus the warmup backlog *)
      && float_of_int m.Dynamic.completed
         <= (m.Dynamic.offered_load *. float_of_int params.Dynamic.slots)
            +. (float_of_int (Network.n_procs net)
               *. params.Dynamic.arrival_prob
               *. float_of_int params.Dynamic.warmup)
            +. float_of_int (Network.n_res net))

let suite = [ chaos; schedulers_agree_under_chaos; dynamic_soak ]
