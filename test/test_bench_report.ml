(* Tests for the perf-trajectory harness (Rsin_obs.Bench_report): the
   measurement loop, the BENCH_*.json schema round-trip and the
   regression comparator the `rsin perf` gate is built on. *)

module Bench_report = Rsin_obs.Bench_report
module Metrics = Rsin_obs.Metrics
module Json = Rsin_util.Json

let check = Alcotest.check
let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let env = [ ("ocaml", "test"); ("git_sha", "abc"); ("date", "never"); ("os", "Unix") ]

(* --- measurement ---------------------------------------------------------- *)

let test_measure () =
  let calls = ref 0 in
  let m =
    Bench_report.measure ~warmup:2 ~runs:5 (fun () ->
        incr calls;
        ignore (Sys.opaque_identity (List.init 100 Fun.id)))
  in
  check Alcotest.int "warmup + runs calls" 7 !calls;
  check Alcotest.int "wall samples" 5 (Array.length m.Bench_report.wall_us);
  check Alcotest.int "alloc samples" 5 (Array.length m.Bench_report.minor_words);
  Array.iter
    (fun us -> check Alcotest.bool "wall >= 0" true (us >= 0.))
    m.Bench_report.wall_us;
  (* the thunk allocates a 100-element list every run *)
  Array.iter
    (fun w -> check Alcotest.bool "allocation observed" true (w > 0.))
    m.Bench_report.minor_words

let test_record_shapes () =
  let r = Bench_report.create ~env "shape" in
  let case = Bench_report.case r "c" in
  Bench_report.record_samples case ~name:"lat" ~kind:Bench_report.Time
    ~unit_:"us" [| 1.; 2.; 3.; 4. |];
  Bench_report.record_count case ~name:"work" ~unit_:"arcs" 17.;
  check
    Alcotest.(list string)
    "case names" [ "c" ]
    (Bench_report.case_names r);
  (* introspect through the JSON projection *)
  let j = Bench_report.to_json r in
  let cases = Option.get Option.(bind (Json.member "cases" j) Json.to_list) in
  let metrics =
    Option.get Option.(bind (Json.member "metrics" (List.hd cases)) Json.to_obj)
  in
  let m name = List.assoc name metrics in
  let num name field =
    Option.get Option.(bind (Json.member field (m name)) Json.to_num)
  in
  check (Alcotest.float 1e-9) "dist mean" 2.5 (num "lat" "mean");
  check (Alcotest.float 1e-9) "dist p50" 2.5 (num "lat" "p50");
  check (Alcotest.float 1e-9) "dist min" 1. (num "lat" "min");
  check (Alcotest.float 1e-9) "dist max" 4. (num "lat" "max");
  check (Alcotest.float 1e-9) "scalar collapses" 17. (num "work" "mean");
  check (Alcotest.float 1e-9) "scalar p95 = value" 17. (num "work" "p95");
  check (Alcotest.float 1e-9) "scalar n = 1" 1. (num "work" "n");
  (* re-recording a name replaces it rather than duplicating *)
  Bench_report.record_count case ~name:"work" 18.;
  let j = Bench_report.to_json r in
  let cases = Option.get Option.(bind (Json.member "cases" j) Json.to_list) in
  let metrics =
    Option.get Option.(bind (Json.member "metrics" (List.hd cases)) Json.to_obj)
  in
  check Alcotest.int "no duplicate" 2 (List.length metrics)

let test_record_counters () =
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "flow.dinic.arcs") 42;
  Metrics.set (Metrics.gauge reg "g") 1.5;
  ignore (Metrics.histogram reg "h");
  let r = Bench_report.create ~env "ctr" in
  let case = Bench_report.case r "c" in
  Bench_report.record_counters case ~prefix:"warm." reg;
  let j = Bench_report.to_json r in
  let cases = Option.get Option.(bind (Json.member "cases" j) Json.to_list) in
  let metrics =
    Option.get Option.(bind (Json.member "metrics" (List.hd cases)) Json.to_obj)
  in
  (* counters become Count metrics; gauges and histograms are skipped *)
  check Alcotest.int "one metric" 1 (List.length metrics);
  check Alcotest.bool "prefixed name" true
    (List.mem_assoc "warm.flow.dinic.arcs" metrics)

(* --- schema round-trip ---------------------------------------------------- *)

let test_json_roundtrip_fixed () =
  let r = Bench_report.create ~quick:true ~env "fixed" in
  let c1 = Bench_report.case r "a" in
  Bench_report.record_samples c1 ~name:"wall_us" ~kind:Bench_report.Time
    ~unit_:"us" [| 10.5; 11.25; 9.875 |];
  Bench_report.record_count c1 ~name:"work" 123.;
  let c2 = Bench_report.case r "b" in
  Bench_report.record_samples c2 ~name:"minor_words" ~kind:Bench_report.Alloc
    ~unit_:"words" [| 4096.; 4096. |];
  match Bench_report.of_json (Bench_report.to_json r) with
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
  | Ok r' ->
    check Alcotest.bool "equal after round-trip" true (Bench_report.equal r r');
    check Alcotest.bool "quick preserved" true (Bench_report.quick r');
    check
      Alcotest.(list string)
      "case order preserved" [ "a"; "b" ]
      (Bench_report.case_names r')

let test_file_roundtrip () =
  let r = Bench_report.create ~env "file" in
  let case = Bench_report.case r "c" in
  Bench_report.record_count case ~name:"x" 7.;
  let dir = Filename.temp_file "rsin_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let path = Bench_report.write ~dir r in
      check Alcotest.string "filename" "BENCH_file.json" (Filename.basename path);
      match Bench_report.read_file path with
      | Ok r' -> check Alcotest.bool "file round-trip" true (Bench_report.equal r r')
      | Error e -> Alcotest.fail e)

let test_of_json_rejects () =
  let reject what s =
    match Bench_report.of_json (Result.get_ok (Json.parse s)) with
    | Ok _ -> Alcotest.fail (what ^ ": should have been rejected")
    | Error _ -> ()
  in
  reject "missing bench" {|{"schema":1,"quick":false,"env":{},"cases":[]}|};
  reject "wrong schema version"
    {|{"bench":"x","schema":99,"quick":false,"env":{},"cases":[]}|};
  reject "bad metric kind"
    {|{"bench":"x","schema":1,"quick":false,"env":{},"cases":[{"case":"c","metrics":{"m":{"kind":"frob","unit":"","n":1,"mean":1,"ci95":0,"p50":1,"p95":1,"min":1,"max":1}}}]}|}

(* Arbitrary reports built through the public API must survive
   to_json/of_json exactly — the schema loses nothing. *)
let report_gen =
  let open QCheck.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (1 -- 8) in
  let samples = array_size (1 -- 12) (float_range 0.001 1e7) in
  let kind =
    oneofl [ Bench_report.Time; Bench_report.Alloc; Bench_report.Count ]
  in
  let metric case =
    oneof
      [ map3
          (fun n k xs ->
            Bench_report.record_samples case ~name:n ~kind:k ~unit_:"u" xs)
          name kind samples;
        map2
          (fun n v -> Bench_report.record_count case ~name:n v)
          name (float_range 0. 1e9) ]
  in
  let case r = name >>= fun cn ->
    let c = Bench_report.case r cn in
    list_size (1 -- 4) (metric c) >|= fun (_ : unit list) -> ()
  in
  name >>= fun bench ->
  bool >>= fun quick ->
  let r = Bench_report.create ~quick ~env bench in
  list_size (1 -- 4) (case r) >|= fun (_ : unit list) -> r

let schema_roundtrip =
  qtest "BENCH schema round-trip"
    (QCheck.make
       ~print:(fun r -> Json.to_string (Bench_report.to_json r))
       report_gen)
    (fun r ->
      match Bench_report.of_json (Bench_report.to_json r) with
      | Ok r' -> Bench_report.equal r r'
      | Error _ -> false)

(* --- comparator ----------------------------------------------------------- *)

let mk_pair ~time_factor ~count_factor =
  let mk f =
    let r = Bench_report.create ~env "cmp" in
    let case = Bench_report.case r "c" in
    Bench_report.record_samples case ~name:"wall_us" ~kind:Bench_report.Time
      ~unit_:"us"
      (Array.init 10 (fun i -> (50. +. float_of_int i) *. fst f));
    Bench_report.record_count case ~name:"work" (1000. *. snd f);
    r
  in
  (mk (1., 1.), mk (time_factor, count_factor))

let statuses deltas =
  List.map
    (fun d -> (d.Bench_report.d_metric, d.Bench_report.d_status))
    deltas

let test_diff_clean () =
  let baseline, fresh = mk_pair ~time_factor:1. ~count_factor:1. in
  let deltas = Bench_report.diff ~baseline fresh in
  check Alcotest.int "all metrics compared" 2 (List.length deltas);
  check Alcotest.bool "no regressions" true
    (Bench_report.regressions deltas = [])

let test_diff_detects_slowdown () =
  let baseline, fresh = mk_pair ~time_factor:3. ~count_factor:1. in
  let regs = Bench_report.regressions (Bench_report.diff ~baseline fresh) in
  check Alcotest.int "one regression" 1 (List.length regs);
  let d = List.hd regs in
  check Alcotest.string "it is the time metric" "wall_us" d.Bench_report.d_metric;
  check (Alcotest.float 1e-6) "ratio 3" 3. d.Bench_report.ratio

let test_diff_tolerances_by_kind () =
  (* 1.5x time is inside the 2x default; 1.5x count is way outside 1.01 *)
  let baseline, fresh = mk_pair ~time_factor:1.5 ~count_factor:1.5 in
  let regs = Bench_report.regressions (Bench_report.diff ~baseline fresh) in
  check
    Alcotest.(list (pair string bool))
    "only the count regresses"
    [ ("work", true) ]
    (List.map (fun d -> (d.Bench_report.d_metric, true)) regs);
  (* a 0.5% count drift stays inside 1.01 *)
  let baseline, fresh = mk_pair ~time_factor:1. ~count_factor:1.005 in
  check Alcotest.bool "small count drift ok" true
    (Bench_report.regressions (Bench_report.diff ~baseline fresh) = [])

let test_diff_improvement () =
  let baseline, fresh = mk_pair ~time_factor:0.25 ~count_factor:1. in
  let deltas = Bench_report.diff ~baseline fresh in
  check Alcotest.bool "improvement flagged" true
    (List.mem ("wall_us", Bench_report.Improvement) (statuses deltas));
  check Alcotest.bool "improvements never fail the gate" true
    (Bench_report.regressions deltas = [])

let test_diff_one_sided () =
  let baseline = Bench_report.create ~env "cmp" in
  let bc = Bench_report.case baseline "c" in
  Bench_report.record_count bc ~name:"old_metric" 1.;
  Bench_report.record_count bc ~name:"shared" 5.;
  let fresh = Bench_report.create ~env "cmp" in
  let fc = Bench_report.case fresh "c" in
  Bench_report.record_count fc ~name:"shared" 5.;
  Bench_report.record_count fc ~name:"new_metric" 2.;
  let nc = Bench_report.case fresh "new_case" in
  Bench_report.record_count nc ~name:"x" 1.;
  let st = statuses (Bench_report.diff ~baseline fresh) in
  check Alcotest.bool "only-baseline reported" true
    (List.mem ("old_metric", Bench_report.Only_baseline) st);
  check Alcotest.bool "only-fresh metric reported" true
    (List.mem ("new_metric", Bench_report.Only_fresh) st);
  check Alcotest.bool "only-fresh case reported" true
    (List.mem ("x", Bench_report.Only_fresh) st);
  check Alcotest.bool "shared metric same" true
    (List.mem ("shared", Bench_report.Same) st);
  check Alcotest.bool "one-sided never regresses" true
    (Bench_report.regressions (Bench_report.diff ~baseline fresh) = [])

let test_diff_zero_baseline () =
  let mk v =
    let r = Bench_report.create ~env "cmp" in
    Bench_report.record_count (Bench_report.case r "c") ~name:"m" v;
    r
  in
  let status b f =
    match Bench_report.diff ~baseline:(mk b) (mk f) with
    | [ d ] -> d.Bench_report.d_status
    | _ -> Alcotest.fail "expected one delta"
  in
  check Alcotest.bool "0 vs 0 is same" true (status 0. 0. = Bench_report.Same);
  check Alcotest.bool "0 vs small stays same" true
    (status 0. 0.005 <> Bench_report.Regression);
  check Alcotest.bool "0 vs large regresses" true
    (status 0. 50. = Bench_report.Regression)

let test_diff_quick_mismatch () =
  let mk quick =
    let r = Bench_report.create ~quick ~env "cmp" in
    Bench_report.record_count (Bench_report.case r "c") ~name:"m" 1.;
    r
  in
  match Bench_report.diff ~baseline:(mk false) (mk true) with
  | _ -> Alcotest.fail "quick mismatch must raise"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "measure" `Quick test_measure;
    Alcotest.test_case "record shapes" `Quick test_record_shapes;
    Alcotest.test_case "record counters" `Quick test_record_counters;
    Alcotest.test_case "json round-trip (fixed)" `Quick test_json_roundtrip_fixed;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "of_json rejects bad input" `Quick test_of_json_rejects;
    schema_roundtrip;
    Alcotest.test_case "diff clean" `Quick test_diff_clean;
    Alcotest.test_case "diff detects 3x slowdown" `Quick
      test_diff_detects_slowdown;
    Alcotest.test_case "diff per-kind tolerances" `Quick
      test_diff_tolerances_by_kind;
    Alcotest.test_case "diff improvement" `Quick test_diff_improvement;
    Alcotest.test_case "diff one-sided metrics" `Quick test_diff_one_sided;
    Alcotest.test_case "diff zero baseline" `Quick test_diff_zero_baseline;
    Alcotest.test_case "diff quick mismatch" `Quick test_diff_quick_mismatch;
  ]
