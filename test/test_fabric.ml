(* Packet fabric tests: routing tables, conservation, determinism,
   backpressure, fault semantics, and the packet-vs-circuit differential
   of DESIGN §11 — with unbounded buffers and single-flit tasks the
   fabric accepts at least as many flits per cycle as circuit switching
   allocates on the same workload. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Fault = Rsin_fault.Fault
module Netgraph = Rsin_core.Netgraph
module Solver = Rsin_flow.Solver
module Prng = Rsin_util.Prng
module Arbiter = Rsin_packet.Arbiter
module Routing = Rsin_packet.Routing
module Fabric = Rsin_packet.Fabric
module Sweep = Rsin_packet.Sweep
module Replay = Rsin_packet.Replay

let check = Alcotest.check

let qtest name ?(count = 40) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let nets =
  [
    ("omega8", fun () -> Builders.omega 8);
    ("benes8", fun () -> Builders.benes 8);
    ("clos", fun () -> Builders.clos ~m:3 ~n:2 ~r:4);
    ("gamma8", fun () -> Builders.gamma 8);
    ("adm8", fun () -> Builders.adm 8);
    ("extra8", fun () -> Builders.extra_stage_omega 8 ~extra:1);
  ]

let net_arb =
  QCheck.make
    ~print:(fun (name, _) -> name)
    QCheck.Gen.(map (List.nth nets) (int_range 0 (List.length nets - 1)))

(* On a healthy network every processor reaches every resource, and every
   routing candidate port leads somewhere that still reaches the
   destination (checked one hop down). *)
let prop_routing_total (_, mk) =
  let net = mk () in
  let r = Routing.build net in
  let np = Network.n_procs net and nr = Network.n_res net in
  let ok = ref true in
  for p = 0 to np - 1 do
    for d = 0 to nr - 1 do
      if not (Routing.proc_reaches r ~proc:p ~dest:d) then ok := false
    done
  done;
  for b = 0 to Network.n_boxes net - 1 do
    for d = 0 to nr - 1 do
      Array.iter
        (fun port ->
          let l = (Network.box_out_links net b).(port) in
          match Network.link_dst net l with
          | Network.Res d' -> if d' <> d then ok := false
          | Network.Box_in (b', _) ->
            if Array.length (Routing.ports r ~box:b' ~dest:d) = 0 then
              ok := false
          | _ -> ok := false)
        (Routing.ports r ~box:b ~dest:d)
    done
  done;
  !ok

(* Drive a random workload; flits are conserved at every cycle and the
   run is deterministic. *)
let prop_conservation ((_, mk), seed) =
  let net = mk () in
  let rng = Prng.create seed in
  let np = Network.n_procs net and nr = Network.n_res net in
  let fabric = Fabric.create ~vq_depth:2 ~arbiter:(module Arbiter.Islip) net in
  let ok = ref true in
  let next = ref 0 in
  for _ = 1 to 40 do
    for p = 0 to np - 1 do
      if Prng.bernoulli rng 0.4 then begin
        Fabric.offer fabric ~proc:p ~task:!next ~dest:(Prng.int rng nr)
          ~flits:(1 + Prng.int rng 3);
        incr next
      end
    done;
    ignore (Fabric.step fabric);
    let s = Fabric.stats fabric in
    (* every offered flit is delivered, dropped, or still in flight *)
    if
      s.Fabric.offered_flits
      <> s.Fabric.delivered_flits + s.Fabric.dropped_flits
         + Fabric.in_flight fabric
    then ok := false;
    if Fabric.in_flight fabric <> s.Fabric.buffered_flits + s.Fabric.entry_flits
    then ok := false
  done;
  (* drain: unbounded entry + finite traffic must fully deliver *)
  let guard = ref 0 in
  while Fabric.in_flight fabric > 0 && !guard < 10_000 do
    ignore (Fabric.step fabric);
    incr guard
  done;
  let s = Fabric.stats fabric in
  !ok
  && Fabric.in_flight fabric = 0
  && s.Fabric.offered_flits = s.Fabric.delivered_flits + s.Fabric.dropped_flits
  && s.Fabric.dropped_flits = 0

let prop_deterministic ((_, mk), seed) =
  let run () =
    let net = mk () in
    let rng = Prng.create seed in
    let np = Network.n_procs net and nr = Network.n_res net in
    let fabric = Fabric.create ~vq_depth:3 ~arbiter:(module Arbiter.Naive_rr) net in
    let log = Buffer.create 256 in
    let next = ref 0 in
    for _ = 1 to 30 do
      for p = 0 to np - 1 do
        if Prng.bernoulli rng 0.5 then begin
          Fabric.offer fabric ~proc:p ~task:!next ~dest:(Prng.int rng nr) ~flits:2;
          incr next
        end
      done;
      List.iter
        (function
          | Fabric.Delivered { task; dest } ->
            Buffer.add_string log (Printf.sprintf "D%d:%d;" task dest)
          | Fabric.Dropped { task; dest } ->
            Buffer.add_string log (Printf.sprintf "X%d:%d;" task dest))
        (Fabric.step fabric)
    done;
    Buffer.contents log
  in
  run () = run ()

(* The differential: single-flit tasks, unbounded buffers. Whatever
   circuit switching can allocate in one slot (a max flow), the packet
   fabric accepts at least that many flits in the next cycle, because
   packet injection only needs first-hop space while a circuit needs a
   whole vertex-disjoint path. *)
let prop_accepts_at_least_circuit ((_, mk), seed) =
  let net = mk () in
  let rng = Prng.create seed in
  let np = Network.n_procs net and nr = Network.n_res net in
  let requesting =
    List.filter (fun _ -> Prng.bernoulli rng 0.7) (List.init np Fun.id)
  in
  QCheck.assume (requesting <> []);
  let g =
    Netgraph.compile net
      ~requests:(List.map (fun p -> (p, 0)) requesting)
      ~free:(List.init nr (fun r -> (r, 0)))
  in
  let (module S) = Solver.get "dinic" in
  let flow, _ =
    S.max_flow (Netgraph.graph g) ~source:(Netgraph.source g)
      ~sink:(Netgraph.sink g)
  in
  let { Netgraph.mapping; _ } = Netgraph.extract g in
  (* Same workload on the fabric: every requester offers one single-flit
     task, allocated requesters to the very resource Dinic picked. *)
  let fabric = Fabric.create ~arbiter:(module Arbiter.Islip) net in
  List.iter
    (fun p ->
      let dest =
        match List.assoc_opt p mapping with
        | Some r -> r
        | None -> Prng.int rng nr
      in
      Fabric.offer fabric ~proc:p ~task:p ~dest ~flits:1)
    requesting;
  ignore (Fabric.step fabric);
  let s = Fabric.stats fabric in
  let per_cycle_ok =
    (* first cycle: the fabric accepts every requester's flit, which is
       >= the max-flow value because each circuit allocation is one
       requester with a full path *)
    s.Fabric.injected_flits >= flow
    && s.Fabric.injected_flits = List.length requesting
  in
  let guard = ref 0 in
  while Fabric.in_flight fabric > 0 && !guard < 1000 do
    ignore (Fabric.step fabric);
    incr guard
  done;
  let s = Fabric.stats fabric in
  per_cycle_ok
  && s.Fabric.delivered_tasks = List.length requesting
  && s.Fabric.dropped_tasks = 0

let test_backpressure_depth1 () =
  (* vq_depth 1 on omega-8: heavy same-destination burst must still
     deliver everything, just slowly (lossless backpressure). *)
  let net = Builders.omega 8 in
  let fabric = Fabric.create ~vq_depth:1 ~arbiter:(module Arbiter.Islip) net in
  for p = 0 to 7 do
    Fabric.offer fabric ~proc:p ~task:p ~dest:0 ~flits:3
  done;
  let delivered = ref 0 in
  let guard = ref 0 in
  while Fabric.in_flight fabric > 0 && !guard < 1000 do
    List.iter
      (function Fabric.Delivered _ -> incr delivered | Fabric.Dropped _ -> ())
      (Fabric.step fabric);
    incr guard
  done;
  check Alcotest.int "all tasks delivered" 8 !delivered;
  let s = Fabric.stats fabric in
  check Alcotest.int "no drops" 0 s.Fabric.dropped_flits;
  check Alcotest.int "flits" 24 s.Fabric.delivered_flits;
  (* a single resource port takes one flit per cycle: 24 flits need at
     least 24 cycles — the serialization circuit switching avoids *)
  check Alcotest.bool "serialized" true (Fabric.now fabric >= 24)

let test_unreachable_drops () =
  let net = Builders.omega 8 in
  Network.set_res_up net 3 false;
  let fabric = Fabric.create ~arbiter:(module Arbiter.Naive_rr) net in
  Fabric.offer fabric ~proc:0 ~task:42 ~dest:3 ~flits:2;
  let events = Fabric.step fabric in
  check Alcotest.bool "dropped at injection" true
    (List.exists (function Fabric.Dropped { task = 42; dest = 3 } -> true | _ -> false)
       events);
  (* flits of a dropped task are discarded lazily, at the next head scan *)
  ignore (Fabric.step fabric);
  let s = Fabric.stats fabric in
  check Alcotest.int "task counted" 1 s.Fabric.dropped_tasks;
  check Alcotest.int "flits counted" 2 s.Fabric.dropped_flits

let test_fault_drops_on_single_path () =
  (* Omega is delta: one path per (proc, dest). Kill a link carrying
     queued flits; refresh_health must drop exactly the stranded tasks
     and leave the rest deliverable. *)
  let net = Builders.omega 8 in
  let fabric = Fabric.create ~arbiter:(module Arbiter.Islip) net in
  for p = 0 to 7 do
    Fabric.offer fabric ~proc:p ~task:p ~dest:p ~flits:4
  done;
  for _ = 1 to 2 do ignore (Fabric.step fabric) done;
  (* kill resource 0's access link: task 0 can never finish *)
  let dead = Network.res_link net 0 in
  Fault.apply net (Fault.Link_down dead);
  let events = Fabric.refresh_health fabric in
  check Alcotest.bool "stranded task dropped" true
    (List.exists (function Fabric.Dropped { task = 0; _ } -> true | _ -> false)
       events);
  let guard = ref 0 in
  while Fabric.in_flight fabric > 0 && !guard < 1000 do
    ignore (Fabric.step fabric);
    incr guard
  done;
  let s = Fabric.stats fabric in
  check Alcotest.int "others delivered" 7 s.Fabric.delivered_tasks;
  check Alcotest.int "one task dropped" 1 s.Fabric.dropped_tasks

let test_fault_reroutes_on_multipath () =
  (* Gamma has alternates: killing one mid-network link reroutes queued
     flits instead of dropping them. *)
  let net = Builders.gamma 8 in
  let fabric = Fabric.create ~arbiter:(module Arbiter.Islip) net in
  for p = 0 to 7 do
    Fabric.offer fabric ~proc:p ~task:p ~dest:((p + 3) mod 8) ~flits:3
  done;
  for _ = 1 to 2 do ignore (Fabric.step fabric) done;
  (* kill a stage-1 box output link (not a resource access link) *)
  let b = List.hd (Network.boxes_in_stage net 1) in
  let dead = (Network.box_out_links net b).(0) in
  Fault.apply net (Fault.Link_down dead);
  let events = Fabric.refresh_health fabric in
  check Alcotest.(list int) "nothing dropped" []
    (List.filter_map
       (function Fabric.Dropped { task; _ } -> Some task | _ -> None)
       events);
  let guard = ref 0 in
  while Fabric.in_flight fabric > 0 && !guard < 1000 do
    ignore (Fabric.step fabric);
    incr guard
  done;
  let s = Fabric.stats fabric in
  check Alcotest.int "all delivered" 8 s.Fabric.delivered_tasks;
  check Alcotest.int "none dropped" 0 s.Fabric.dropped_tasks

let test_create_validates () =
  let net = Builders.omega 8 in
  Alcotest.check_raises "vq_depth"
    (Invalid_argument "Fabric.create: vq_depth must be >= 1") (fun () ->
      ignore (Fabric.create ~vq_depth:0 ~arbiter:(module Arbiter.Islip) net))

let test_obs_counters () =
  let net = Builders.omega 8 in
  let obs = Rsin_obs.Obs.create () in
  let fabric = Fabric.create ~obs ~arbiter:(module Arbiter.Islip) net in
  for p = 0 to 7 do
    Fabric.offer fabric ~proc:p ~task:p ~dest:0 ~flits:1
  done;
  let guard = ref 0 in
  while Fabric.in_flight fabric > 0 && !guard < 100 do
    ignore (Fabric.step fabric);
    incr guard
  done;
  let m = obs.Rsin_obs.Obs.metrics in
  List.iter
    (fun name ->
      check Alcotest.bool name true (Rsin_obs.Metrics.find m name <> None))
    [ "packet.grants"; "packet.conflicts"; "packet.delivered_flits";
      "packet.injected_flits"; "packet.delay"; "packet.voq_occupancy";
      "packet.buffered"; "packet.box0.grants" ];
  check Alcotest.int "delivered flits counted" 8
    (Rsin_obs.Metrics.get_counter m "packet.delivered_flits")

(* Saturation sweep sanity: throughput tracks offered load far below
   saturation and is monotone-ish; zero load gives zero traffic. *)
let test_sweep_low_load_lossless () =
  let net = Builders.omega 8 in
  let pts =
    Sweep.saturation ~vq_depth:4 ~arbiter:(module Arbiter.Islip)
      (Prng.create 11) net ~slots:400 ~loads:[ 0.0; 0.1 ]
  in
  match pts with
  | [ zero; low ] ->
    check Alcotest.int "zero load offers nothing" 0 zero.Sweep.offered_tasks;
    check Alcotest.int "low load drops nothing" 0 low.Sweep.dropped_tasks;
    check Alcotest.int "low load delivers window" low.Sweep.offered_tasks
      low.Sweep.delivered_tasks;
    (* n_procs = n_res on omega-8, so the two rates are comparable *)
    check Alcotest.bool "throughput near offered" true
      (Float.abs (low.Sweep.throughput -. low.Sweep.accepted) < 0.02)
  | _ -> Alcotest.fail "expected two points"

let test_replay_reserved_idle () =
  (* flits > 1 forces reserved-but-idle resource slots: the reservation
     is held while the packet is still in flight. *)
  let net = Builders.omega 8 in
  let tasks =
    List.init 16 (fun i ->
        { Replay.arrival = i / 8; proc = i mod 8; service = 2; flits = 6 })
  in
  let r =
    Replay.run ~arbiter:(module Arbiter.Islip) (Prng.create 3) net tasks
  in
  check Alcotest.int "all complete" 16 r.Replay.completed;
  check Alcotest.int "none dropped" 0 r.Replay.dropped;
  check Alcotest.bool "reserved idle is visible" true (r.Replay.reserved_idle > 0.);
  check Alcotest.bool "reserved = serving + idle" true
    (Float.abs
       (r.Replay.reserved_utilization
       -. (r.Replay.serving_utilization +. r.Replay.reserved_idle))
    < 1e-9)

let test_replay_fault_drops_service () =
  let net = Builders.omega 8 in
  let tasks =
    List.init 8 (fun i -> { Replay.arrival = 0; proc = i; service = 50; flits = 1 })
  in
  (* every resource dies once tasks are in service *)
  let faults = List.init 8 (fun r -> (10, Fault.Res_down r)) in
  let r =
    Replay.run ~faults ~arbiter:(module Arbiter.Naive_rr) (Prng.create 5) net
      tasks
  in
  check Alcotest.int "all dropped" 8 r.Replay.dropped;
  check Alcotest.int "none complete" 0 r.Replay.completed;
  check Alcotest.int "faults applied" 8 r.Replay.faults_applied

let suite =
  [
    qtest "routing total and consistent on healthy nets" net_arb
      prop_routing_total;
    qtest "flit conservation and lossless drain"
      QCheck.(pair net_arb small_nat)
      prop_conservation;
    qtest "fabric runs are deterministic"
      QCheck.(pair net_arb small_nat)
      prop_deterministic;
    qtest "accepts at least circuit-mode allocations"
      QCheck.(pair net_arb small_nat)
      prop_accepts_at_least_circuit;
    Alcotest.test_case "vq_depth=1 backpressure is lossless" `Quick
      test_backpressure_depth1;
    Alcotest.test_case "unreachable destination drops at injection" `Quick
      test_unreachable_drops;
    Alcotest.test_case "fault strands tasks on single-path nets" `Quick
      test_fault_drops_on_single_path;
    Alcotest.test_case "fault reroutes on multipath nets" `Quick
      test_fault_reroutes_on_multipath;
    Alcotest.test_case "create validates vq_depth" `Quick test_create_validates;
    Alcotest.test_case "obs counters registered" `Quick test_obs_counters;
    Alcotest.test_case "sweep: low load is lossless" `Quick
      test_sweep_low_load_lossless;
    Alcotest.test_case "replay: reserved-but-idle accounted" `Quick
      test_replay_reserved_idle;
    Alcotest.test_case "replay: resource death drops its task" `Quick
      test_replay_fault_drops_service;
  ]
