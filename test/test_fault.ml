(* Tests for the fault model (Rsin_fault) and its threading through the
   stack: health masking in the network->flow compiler, the seeded
   MTBF/MTTR injector, fault events in workload traces, and the warm
   engine's count-exact parity with per-cycle rebuilds under
   fault/repair churn. *)

module Graph = Rsin_flow.Graph
module Dinic = Rsin_flow.Dinic
module Edmonds_karp = Rsin_flow.Edmonds_karp
module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Fault = Rsin_fault.Fault
module Scheduler = Rsin_core.Scheduler
module T1 = Rsin_core.Transform1
module Workload = Rsin_sim.Workload
module Token_sim = Rsin_distributed.Token_sim
module Engine = Rsin_engine.Engine
module Prng = Rsin_util.Prng

let check = Alcotest.check

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let topologies =
  [ ("omega", fun () -> Builders.omega 8);
    ("butterfly", fun () -> Builders.butterfly 8);
    ("benes", fun () -> Builders.benes 8);
    ("clos", fun () -> Builders.clos ~m:3 ~n:2 ~r:4);
    ("crossbar", fun () -> Builders.crossbar ~n_procs:6 ~n_res:6);
    ("delta", fun () -> Builders.delta ~radix:2 ~stages:3);
    ("extra_stage", fun () -> Builders.extra_stage_omega 8 ~extra:1) ]

(* --- Network health ------------------------------------------------------- *)

let test_health_basics () =
  let net = Builders.omega 8 in
  check Alcotest.bool "all up initially" true (Network.all_up net);
  Network.set_link_up net 0 false;
  check Alcotest.bool "link down" false (Network.link_up net 0);
  check Alcotest.bool "link 0 unusable" false (Network.usable net 0);
  check Alcotest.bool "not all up" false (Network.all_up net);
  Network.set_link_up net 0 true;
  check Alcotest.bool "all up after repair" true (Network.all_up net);
  (* A down box masks every link touching it. *)
  Network.set_box_up net 0 false;
  let touched = ref 0 in
  for l = 0 to Network.n_links net - 1 do
    if not (Network.usable net l) then incr touched
  done;
  check Alcotest.bool "box down masks its links" true (!touched > 0);
  Network.set_box_up net 0 true;
  (* Health survives copy, independently of the original. *)
  Network.set_res_up net 3 false;
  let c = Network.copy net in
  check Alcotest.bool "copy keeps health" false (Network.res_up c 3);
  Network.set_res_up c 3 true;
  check Alcotest.bool "copy is independent" false (Network.res_up net 3)

(* --- Degraded scheduling = max flow on a hand-masked graph --------------- *)

(* Independent re-derivation of the masking rule: build the snapshot
   flow graph by hand, dropping every link that is occupied, down, or
   touches a down endpoint, and compare Transformation 1 on the degraded
   network against Dinic on that graph. This pins the [usable] predicate
   the compiler honours without going through Netgraph at all. *)
let hand_masked_max_flow net requests free =
  let np = Network.n_procs net and nr = Network.n_res net in
  let g = Graph.create () in
  let source = Graph.add_node g and sink = Graph.add_node g in
  let boxes = Array.init (Network.n_boxes net) (fun _ -> Graph.add_node g) in
  let procs = Array.make np (-1) and ress = Array.make nr (-1) in
  List.iter (fun p -> procs.(p) <- Graph.add_node g) requests;
  List.iter (fun r -> ress.(r) <- Graph.add_node g) free;
  List.iter
    (fun p -> ignore (Graph.add_arc g ~src:source ~dst:procs.(p) ~cap:1))
    requests;
  List.iter
    (fun r -> ignore (Graph.add_arc g ~src:ress.(r) ~dst:sink ~cap:1))
    free;
  let endpoint_ok = function
    | Network.Proc p -> procs.(p) >= 0
    | Network.Res r -> ress.(r) >= 0
    | Network.Box_in _ | Network.Box_out _ -> true
  in
  let endpoint_up = function
    | Network.Proc _ -> true
    | Network.Res r -> Network.res_up net r
    | Network.Box_in (b, _) | Network.Box_out (b, _) -> Network.box_up net b
  in
  let node_of = function
    | Network.Proc p -> procs.(p)
    | Network.Res r -> ress.(r)
    | Network.Box_in (b, _) | Network.Box_out (b, _) -> boxes.(b)
  in
  for l = 0 to Network.n_links net - 1 do
    let src = Network.link_src net l and dst = Network.link_dst net l in
    if
      Network.link_state net l = Network.Free
      && Network.link_up net l
      && endpoint_up src && endpoint_up dst
      && endpoint_ok src && endpoint_ok dst
    then ignore (Graph.add_arc g ~src:(node_of src) ~dst:(node_of dst) ~cap:1)
  done;
  fst (Dinic.max_flow g ~source ~sink)

let degraded_equals_hand_masked =
  qtest "degraded Transformation 1 = max flow on hand-masked graph"
    ~count:140 QCheck.small_int (fun seed ->
      List.for_all
        (fun (name, build) ->
          let rng = Prng.create (Hashtbl.hash (name, seed)) in
          let net = build () in
          ignore (Workload.preoccupy rng net ~circuits:(Prng.int rng 3));
          (* Random fault set over all three element kinds. *)
          for l = 0 to Network.n_links net - 1 do
            if Prng.float rng 1.0 < 0.08 then Network.set_link_up net l false
          done;
          for b = 0 to Network.n_boxes net - 1 do
            if Prng.float rng 1.0 < 0.06 then Network.set_box_up net b false
          done;
          for r = 0 to Network.n_res net - 1 do
            if Prng.float rng 1.0 < 0.06 then Network.set_res_up net r false
          done;
          let busy_p, busy_r = Workload.occupied_endpoints net in
          let requests, free = Workload.snapshot rng net in
          let requests =
            List.filter (fun p -> not (List.mem p busy_p)) requests
          in
          let free = List.filter (fun r -> not (List.mem r busy_r)) free in
          if requests = [] || free = [] then true
          else begin
            let o = T1.schedule net ~requests ~free in
            let expected = hand_masked_max_flow net requests free in
            (* The distributed architecture degrades identically: tokens
               die at dead elements. *)
            let tok = Token_sim.run net ~requests ~free in
            o.T1.allocated = expected && tok.Token_sim.allocated = expected
          end)
        topologies)

(* --- Injector ------------------------------------------------------------- *)

let test_injector () =
  let net = Builders.omega 8 in
  let sched = Fault.inject (Prng.create 42) net ~horizon:500 ~mtbf:60. ~mttr:15. in
  check Alcotest.bool "injector produced events" true (List.length sched > 0);
  (* Sorted by time, and every event lands inside the horizon for downs
     (repairs may trail past it). *)
  let rec sorted = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && sorted rest
    | _ -> true
  in
  check Alcotest.bool "schedule sorted by time" true (sorted sched);
  List.iter
    (fun (t, ev) ->
      if Fault.is_down ev then
        check Alcotest.bool "down inside horizon" true (t >= 0 && t < 500))
    sched;
  (* Per element, events alternate down/up starting with a down. *)
  let by_elem = Hashtbl.create 16 in
  List.iter
    (fun (_, ev) ->
      let e = Fault.element ev in
      let prev = Option.value (Hashtbl.find_opt by_elem e) ~default:[] in
      Hashtbl.replace by_elem e (ev :: prev))
    sched;
  Hashtbl.iter
    (fun _ evs ->
      List.iteri
        (fun i ev ->
          check Alcotest.bool "alternating down/up" (i mod 2 = 0)
            (Fault.is_down ev))
        (List.rev evs))
    by_elem;
  (* Deterministic: same seed, same schedule. *)
  let again =
    Fault.inject (Prng.create 42) net ~horizon:500 ~mtbf:60. ~mttr:15.
  in
  check Alcotest.bool "deterministic" true (sched = again);
  let other =
    Fault.inject (Prng.create 43) net ~horizon:500 ~mtbf:60. ~mttr:15.
  in
  check Alcotest.bool "seed-sensitive" true (sched <> other)

let test_trace_roundtrip () =
  let net = Builders.omega 8 in
  let base =
    Workload.synthesize ~cancel_prob:0.1 (Prng.create 5) net ~slots:60
      ~arrival_prob:0.3
  in
  let sched = Fault.inject (Prng.create 5) net ~horizon:60 ~mtbf:30. ~mttr:10. in
  let trace =
    List.stable_sort
      (fun a b -> compare (Workload.event_time a) (Workload.event_time b))
      (base @ Workload.fault_events sched)
  in
  check Alcotest.bool "trace carries fault events" true
    (List.exists
       (function Workload.Fault _ | Workload.Repair _ -> true | _ -> false)
       trace);
  let file = Filename.temp_file "rsin_fault" ".jsonl" in
  Workload.write_trace file trace;
  let back = Workload.read_trace file in
  Sys.remove file;
  check Alcotest.bool "JSONL round-trip preserves fault events" true
    (trace = back)

(* --- Engine under fault/repair churn -------------------------------------- *)

(* The PR-2 differential guarantee must survive faults: at every entered
   cycle — between arbitrary fault teardowns, re-admissions and repairs
   — the warm engine allocates exactly as many requests as a
   from-scratch Scheduler run on the same degraded pre-commit snapshot
   (the snapshot carries the element health, so the reference compiles
   the same surviving subnetwork). *)
let test_differential_under_faults () =
  let total_cycles = ref 0 in
  List.iter
    (fun (name, build) ->
      List.iter
        (fun seed ->
          let net = build () in
          let base =
            Workload.synthesize ~deadline_slack:25 ~cancel_prob:0.1
              (Prng.create seed) net ~slots:150 ~arrival_prob:0.3
          in
          let sched =
            Fault.inject (Prng.create (seed * 7 + 1)) net ~horizon:150
              ~mtbf:40. ~mttr:12.
          in
          let trace =
            List.stable_sort
              (fun a b ->
                compare (Workload.event_time a) (Workload.event_time b))
              (base @ Workload.fault_events sched)
          in
          let hook snapshot (info : Engine.cycle_info) =
            incr total_cycles;
            let reference =
              Scheduler.schedule snapshot
                ~requests:(List.map Scheduler.request info.Engine.requests)
                ~resources:(List.map Scheduler.resource info.Engine.free)
            in
            check Alcotest.int
              (Printf.sprintf "%s seed %d cycle at t=%d" name seed
                 info.Engine.time)
              reference.Scheduler.allocated info.Engine.allocated
          in
          let config mode =
            Engine.Config.v ~mode ~transmission_time:2 ~max_defer:8 ()
          in
          let report =
            Engine.run ~config:(config Engine.Warm) ~cycle_hook:hook net trace
          in
          check Alcotest.bool
            (Printf.sprintf "%s seed %d applied faults" name seed)
            true
            (report.Engine.faults > 0);
          (* Fault accounting is conserved: every arrival is eventually
             completed, cancelled, expired or left pending, with victims
             re-admitted rather than lost. *)
          check Alcotest.int
            (Printf.sprintf "%s seed %d task conservation" name seed)
            report.Engine.arrivals
            (report.Engine.completed + report.Engine.cancelled
           + report.Engine.expired + report.Engine.left_pending);
          (* And the rebuild strategy applies the identical fault
             schedule. *)
          let rebuild = Engine.run ~config:(config Engine.Rebuild) net trace in
          check Alcotest.int
            (Printf.sprintf "%s seed %d fault count parity" name seed)
            report.Engine.faults rebuild.Engine.faults;
          check Alcotest.int
            (Printf.sprintf "%s seed %d repair count parity" name seed)
            report.Engine.repairs rebuild.Engine.repairs)
        [ 10; 11 ])
    [ List.nth topologies 0; List.nth topologies 2; List.nth topologies 3 ];
  check Alcotest.bool "at least 300 fault-churn differential cycles" true
    (!total_cycles >= 300)

(* Determinism of the whole fault path: same inputs, same report. *)
let test_fault_determinism () =
  let net = Builders.benes 8 in
  let base =
    Workload.synthesize (Prng.create 9) net ~slots:80 ~arrival_prob:0.35
  in
  let sched = Fault.inject (Prng.create 17) net ~horizon:80 ~mtbf:30. ~mttr:8. in
  let trace =
    List.stable_sort
      (fun a b -> compare (Workload.event_time a) (Workload.event_time b))
      (base @ Workload.fault_events sched)
  in
  List.iter
    (fun mode ->
      let a = Engine.run ~config:(Engine.Config.v ~mode ()) net trace in
      let b = Engine.run ~config:(Engine.Config.v ~mode ()) net trace in
      check Alcotest.bool (Engine.mode_name mode ^ " deterministic") true (a = b))
    [ Engine.Warm; Engine.Rebuild ]

(* --- Edmonds-Karp min_cut precondition ------------------------------------ *)

let test_min_cut_precondition () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:1);
  Alcotest.check_raises "min_cut before max_flow"
    (Invalid_argument
       "Edmonds_karp.min_cut: flow is not maximum (call max_flow first)")
    (fun () -> ignore (Edmonds_karp.min_cut g ~source:s ~sink:t));
  ignore (Edmonds_karp.max_flow g ~source:s ~sink:t);
  let cut = Edmonds_karp.min_cut g ~source:s ~sink:t in
  check Alcotest.int "cut size after max_flow" 1 (List.length cut)

let suite =
  [
    Alcotest.test_case "network element health" `Quick test_health_basics;
    degraded_equals_hand_masked;
    Alcotest.test_case "MTBF/MTTR injector" `Quick test_injector;
    Alcotest.test_case "fault trace JSONL round-trip" `Quick test_trace_roundtrip;
    Alcotest.test_case "warm = per-cycle rebuild under fault churn" `Slow
      test_differential_under_faults;
    Alcotest.test_case "fault path determinism" `Quick test_fault_determinism;
    Alcotest.test_case "min_cut precondition" `Quick test_min_cut_precondition;
  ]
