(* Edge-case and cross-cutting tests: degenerate network sizes, cost
   accounting identities, renderers, and facade overrides. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Properties = Rsin_topology.Properties
module T1 = Rsin_core.Transform1
module T2 = Rsin_core.Transform2
module Scheduler = Rsin_core.Scheduler
module Heuristic = Rsin_core.Heuristic
module Token_sim = Rsin_distributed.Token_sim
module Graph = Rsin_flow.Graph
module Table = Rsin_util.Table
module Prng = Rsin_util.Prng

let check = Alcotest.check

(* --- tiniest networks (n = 2) -------------------------------------------- *)

let test_minimal_networks () =
  List.iter
    (fun net ->
      Network.paths_exist net;
      check Alcotest.bool (Network.name net ^ " full access") true
        (Builders.full_access net);
      let o = T1.schedule net ~requests:[ 0; 1 ] ~free:[ 0; 1 ] in
      check Alcotest.int (Network.name net ^ " schedules fully") 2 o.T1.allocated;
      let d = Token_sim.run net ~requests:[ 0; 1 ] ~free:[ 0; 1 ] in
      check Alcotest.int (Network.name net ^ " tokens too") 2 d.Token_sim.allocated)
    [ Builders.omega 2; Builders.omega_paper 2; Builders.butterfly 2;
      Builders.baseline 2; Builders.benes 2; Builders.gamma 2;
      Builders.flip 2; Builders.adm 2; Builders.delta ~radix:2 ~stages:1;
      Builders.crossbar ~n_procs:2 ~n_res:2 ]

let test_one_by_one_crossbar () =
  let net = Builders.crossbar ~n_procs:1 ~n_res:1 in
  let o = T1.schedule net ~requests:[ 0 ] ~free:[ 0 ] in
  check Alcotest.int "1x1" 1 o.T1.allocated

(* --- cost accounting identity ---------------------------------------------- *)

let test_t2_cost_identity () =
  let rng = Prng.create 42 in
  for _ = 1 to 30 do
    let net = Builders.omega 8 in
    let requests =
      List.filter (fun _ -> Prng.bool rng) (List.init 8 Fun.id)
      |> List.map (fun p -> (p, 1 + Prng.int rng 9))
    in
    let free =
      List.filter (fun _ -> Prng.bool rng) (List.init 8 Fun.id)
      |> List.map (fun r -> (r, 1 + Prng.int rng 9))
    in
    if requests <> [] && free <> [] then begin
      let ymax = List.fold_left (fun m (_, y) -> max m y) 0 requests in
      let qmax = List.fold_left (fun m (_, q) -> max m q) 0 free in
      let o = T2.schedule net ~requests ~free in
      let expect =
        List.fold_left
          (fun acc (p, r) ->
            acc + (ymax - List.assoc p requests) + (qmax - List.assoc r free))
          0 o.T2.mapping
      in
      check Alcotest.int "allocation_cost identity" expect o.T2.allocation_cost
    end
  done

(* --- renderers ---------------------------------------------------------------- *)

let test_graph_to_dot () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  let e = Graph.add_arc g ~src:s ~dst:t ~cap:2 ~cost:3 in
  Graph.push g e 1;
  let dot = Graph.to_dot ~node_label:(fun v -> Printf.sprintf "N%d" v) g in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "labels" true (contains "N0");
  check Alcotest.bool "flow/cap" true (contains "1/2");
  check Alcotest.bool "cost" true (contains "$3");
  let s2 = Format.asprintf "%a" Graph.pp g in
  check Alcotest.bool "pp nonempty" true (String.length s2 > 0)

let test_network_occupancy_render () =
  let net = Builders.omega 4 in
  (match Builders.route_unique net ~proc:0 ~res:3 with
  | Some links -> ignore (Network.establish net links)
  | None -> Alcotest.fail "route");
  let s = Format.asprintf "%a" Network.pp_occupancy net in
  check Alcotest.bool "shows a busy port" true (String.contains s '#');
  check Alcotest.bool "shows free ports" true (String.contains s '.')

let test_table_right_alignment () =
  let s =
    Table.render
      ~align:[ Table.Left; Table.Right ]
      ~header:[ "name"; "n" ]
      [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  (* right-aligned column pads on the left: " 1" under "22" *)
  check Alcotest.bool "right aligned" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> String.length l >= 2 && l.[String.length l - 1] = '1') lines)

(* --- facade overrides ----------------------------------------------------------- *)

let test_scheduler_discipline_override () =
  (* force the heterogeneous LP path even for a single type *)
  let net = Builders.crossbar ~n_procs:2 ~n_res:2 in
  let r =
    Scheduler.schedule ~discipline:Scheduler.Heterogeneous net
      ~requests:[ Scheduler.request 0; Scheduler.request 1 ]
      ~resources:[ Scheduler.resource 0; Scheduler.resource 1 ]
  in
  check Alcotest.bool "LP bound reported" true
    (Scheduler.lp_bound_of r.Scheduler.detail <> None);
  check Alcotest.int "still optimal" 2 r.Scheduler.allocated

let test_heuristic_oversubscribed () =
  let net = Builders.crossbar ~n_procs:6 ~n_res:2 in
  let o =
    Heuristic.schedule net ~requests:[ 0; 1; 2; 3; 4; 5 ] ~free:[ 0; 1 ]
      (Heuristic.Address_map (Prng.create 9))
  in
  check Alcotest.bool "at most the pool" true (o.Heuristic.allocated <= 2);
  check Alcotest.int "blocked accounted" (6 - o.Heuristic.allocated)
    o.Heuristic.blocked

(* --- asymmetric properties ------------------------------------------------------- *)

let test_properties_asymmetric () =
  let net = Builders.delta_ab ~a:4 ~b:2 ~stages:2 in
  check Alcotest.int "bisection = pool size" 4 (Properties.bisection_flow net);
  check Alcotest.int "path length" 3 (Properties.path_length net);
  let counts = Properties.link_count_per_stage net in
  check Alcotest.int "ranks" 3 (Array.length counts);
  check Alcotest.int "first rank = procs" 16 counts.(0);
  check Alcotest.int "last rank = resources" 4 counts.(2)

let suite =
  [
    Alcotest.test_case "minimal networks (n=2)" `Quick test_minimal_networks;
    Alcotest.test_case "1x1 crossbar" `Quick test_one_by_one_crossbar;
    Alcotest.test_case "t2 cost identity" `Quick test_t2_cost_identity;
    Alcotest.test_case "graph renderers" `Quick test_graph_to_dot;
    Alcotest.test_case "occupancy renderer" `Quick test_network_occupancy_render;
    Alcotest.test_case "table right alignment" `Quick test_table_right_alignment;
    Alcotest.test_case "scheduler discipline override" `Quick
      test_scheduler_discipline_override;
    Alcotest.test_case "heuristic oversubscribed" `Quick test_heuristic_oversubscribed;
    Alcotest.test_case "asymmetric properties" `Quick test_properties_asymmetric;
  ]
