(* Tests for the fault-tolerant distributed token protocol: mid-cycle
   fault injection, phase watchdogs, iteration rollback and cycle
   restart — plus the wired-OR status bus the recovery machinery rides
   on.

   The central property is the recovery differential: whatever mix of
   element deaths and transient stuck-at windows a cycle absorbs, a run
   that reports [completed] commits an allocation exactly equal to
   centralized Dinic max-flow on the final surviving subnetwork, and its
   circuits ride only alive elements. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Scheduler = Rsin_core.Scheduler
module Fault = Rsin_fault.Fault
module Token_sim = Rsin_distributed.Token_sim
module Bus = Rsin_distributed.Status_bus
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng

let check = Alcotest.check

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* --- random fault scenarios ---------------------------------------------- *)

(* Six topology families (the acceptance floor is five). *)
let random_net rng =
  match Prng.int rng 6 with
  | 0 -> Builders.omega (if Prng.bool rng then 8 else 16)
  | 1 -> Builders.omega_paper 8
  | 2 -> Builders.butterfly (if Prng.bool rng then 8 else 16)
  | 3 -> Builders.baseline 8
  | 4 -> Builders.benes 8
  | _ -> Builders.clos ~m:3 ~n:2 ~r:4

let random_scenario rng =
  let net = random_net rng in
  let np = Network.n_procs net and nr = Network.n_res net in
  for _ = 1 to Prng.int rng 3 do
    let p = Prng.int rng np and r = Prng.int rng nr in
    match Builders.route_unique net ~proc:p ~res:r with
    | Some links -> ignore (Network.establish net links)
    | None -> ()
  done;
  let busy_p, busy_r = Workload.occupied_endpoints net in
  let requests =
    List.filter
      (fun p -> (not (List.mem p busy_p)) && Prng.bernoulli rng 0.5)
      (List.init np Fun.id)
  in
  let free =
    List.filter
      (fun r -> (not (List.mem r busy_r)) && Prng.bernoulli rng 0.5)
      (List.init nr Fun.id)
  in
  (net, requests, free)

(* Deaths at random clocks, plus (one in four) transient stuck-at
   windows on a control bit — always paired with a clear, so recovery
   can finish and [completed] stays provable. *)
let random_faults rng net =
  List.concat
    (List.init (Prng.int rng 6) (fun _ ->
         let clk = Prng.int rng 50 in
         if Prng.int rng 4 < 3 then
           let el =
             match Prng.int rng 3 with
             | 0 -> Token_sim.Dead_link (Prng.int rng (Network.n_links net))
             | 1 -> Token_sim.Dead_box (Prng.int rng (Network.n_boxes net))
             | _ -> Token_sim.Dead_res (Prng.int rng (Network.n_res net))
           in
           [ (clk, el) ]
         else
           let e =
             match Prng.int rng 3 with
             | 0 -> Bus.E3_request_token_phase
             | 1 -> Bus.E4_resource_token_phase
             | _ -> Bus.E6_rs_received_token
           in
           let stuck =
             if Prng.bool rng then Bus.Stuck_at_0 else Bus.Stuck_at_1
           in
           [ (clk, Token_sim.Stuck_bit (e, stuck));
             (clk + 3 + Prng.int rng 8, Token_sim.Clear_bit e) ]))

let degrade net applied =
  let degraded = Network.copy net in
  List.iter
    (fun (_clk, f) ->
      match f with
      | Token_sim.Dead_link l -> Fault.apply degraded (Fault.Link_down l)
      | Token_sim.Dead_box b -> Fault.apply degraded (Fault.Box_down b)
      | Token_sim.Dead_res r -> Fault.apply degraded (Fault.Res_down r)
      | Token_sim.Stuck_bit _ | Token_sim.Clear_bit _ -> ())
    applied;
  degraded

let dinic_on net ~requests ~free =
  let o =
    Scheduler.schedule net
      ~requests:(List.map Scheduler.request requests)
      ~resources:(List.map Scheduler.resource free)
  in
  o.Scheduler.allocated

(* --- the recovery differential ------------------------------------------- *)

let recovery_differential =
  qtest "recovered cycle = Dinic on the surviving subnetwork" ~count:300
    QCheck.small_int (fun seed ->
      let rng = Prng.create (seed + 1000) in
      let net, requests, free = random_scenario rng in
      let faults = random_faults rng net in
      let rep = Token_sim.run net ~requests ~free ~faults in
      let r = rep.Token_sim.recovery in
      (* Termination is bounded: retries never exceed the default budget
         and the clock count stays finite and sane. *)
      let budget =
        16 + (2 * List.length faults)
        + List.fold_left (fun acc (c, _) -> max acc c) 0 faults
      in
      if r.Token_sim.retries > budget then false
      else if rep.Token_sim.total_clocks > 100_000 then false
      else if not r.Token_sim.completed then
        (* Give-up is only legal under a bus fault, never from element
           deaths alone. *)
        List.exists
          (function
            | _, Token_sim.Stuck_bit _ -> true
            | _, (Token_sim.Dead_link _ | Token_sim.Dead_box _
                 | Token_sim.Dead_res _ | Token_sim.Clear_bit _) ->
              false)
          faults
      else begin
        let degraded = degrade net rep.Token_sim.applied_faults in
        let opt = dinic_on degraded ~requests ~free in
        let circuits_alive =
          List.for_all
            (fun (_p, links) -> List.for_all (Network.usable degraded) links)
            rep.Token_sim.circuits
        in
        (* Circuits establish disjointly on the surviving subnetwork. *)
        let establishable =
          try
            let scratch = Network.copy degraded in
            List.iter
              (fun (_p, links) -> ignore (Network.establish scratch links))
              rep.Token_sim.circuits;
            true
          with _ -> false
        in
        rep.Token_sim.allocated = opt && circuits_alive && establishable
      end)

(* Fault-free runs must report the zero recovery record and stay
   byte-identical to the historical simulator. *)
let no_faults_no_recovery =
  qtest "fault-free run reports no_recovery" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Prng.create (seed + 2000) in
      let net, requests, free = random_scenario rng in
      let rep = Token_sim.run net ~requests ~free in
      rep.Token_sim.recovery = Token_sim.no_recovery
      && rep.Token_sim.applied_faults = [])

(* The protocol is deterministic: same schedule, same run. *)
let recovery_deterministic =
  qtest "faulted runs are deterministic" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Prng.create (seed + 3000) in
      let net, requests, free = random_scenario rng in
      let faults = random_faults rng net in
      let a = Token_sim.run net ~requests ~free ~faults in
      let b = Token_sim.run net ~requests ~free ~faults in
      a = b)

(* --- targeted fault scenarios -------------------------------------------- *)

let fig_scenario () =
  let net = Builders.omega 8 in
  (net, [ 0; 2; 5 ], [ 1; 3; 6 ])

(* A box death mid-request-phase: the iteration aborts at link level and
   the retry reaches the optimum of the degraded network. *)
let test_dead_box_mid_cycle () =
  let net, requests, free = fig_scenario () in
  let faults = [ (2, Token_sim.Dead_box 1) ] in
  let rep = Token_sim.run net ~requests ~free ~faults in
  check Alcotest.bool "completed" true rep.Token_sim.recovery.Token_sim.completed;
  check Alcotest.int "fault applied" 1
    rep.Token_sim.recovery.Token_sim.faults_applied;
  let degraded = degrade net rep.Token_sim.applied_faults in
  check Alcotest.int "optimal on survivor"
    (dinic_on degraded ~requests ~free)
    rep.Token_sim.allocated

(* A transient stuck-at-1 on E4 hangs the resource phase: the watchdog
   must fire, the iteration roll back, and — once the bit clears — the
   retry still allocate everything. *)
let test_watchdog_recovers_stuck_phase () =
  let net, requests, free = fig_scenario () in
  let faults =
    [ (5, Token_sim.Stuck_bit (Bus.E4_resource_token_phase, Bus.Stuck_at_1));
      (150, Token_sim.Clear_bit Bus.E4_resource_token_phase) ]
  in
  let rep = Token_sim.run net ~requests ~free ~faults in
  let r = rep.Token_sim.recovery in
  check Alcotest.bool "watchdog fired" true (r.Token_sim.watchdog_fires >= 1);
  check Alcotest.bool "iteration aborted" true
    (r.Token_sim.iteration_aborts >= 1);
  check Alcotest.bool "completed" true r.Token_sim.completed;
  check Alcotest.int "full allocation after recovery" 3 rep.Token_sim.allocated

(* Stuck-at-0 is invisible to a watchdog (nothing hangs) — driver
   readback must catch it instead. *)
let test_readback_catches_stuck_at_0 () =
  let net, requests, free = fig_scenario () in
  let faults =
    [ (1, Token_sim.Stuck_bit (Bus.E3_request_token_phase, Bus.Stuck_at_0));
      (60, Token_sim.Clear_bit Bus.E3_request_token_phase) ]
  in
  let rep = Token_sim.run net ~requests ~free ~faults in
  let r = rep.Token_sim.recovery in
  check Alcotest.bool "abort recorded" true (r.Token_sim.iteration_aborts >= 1);
  check Alcotest.bool "completed" true r.Token_sim.completed;
  check Alcotest.int "full allocation after recovery" 3 rep.Token_sim.allocated

(* A permanent stuck bit is unrecoverable: the run must give up within
   its bounded budget instead of livelocking, and say so. *)
let test_permanent_stuck_gives_up () =
  let net, requests, free = fig_scenario () in
  List.iter
    (fun faults ->
      let rep = Token_sim.run net ~requests ~free ~faults in
      let r = rep.Token_sim.recovery in
      check Alcotest.bool "gave up" false r.Token_sim.completed;
      check Alcotest.bool "bounded clocks" true
        (rep.Token_sim.total_clocks < 10_000))
    [ [ (2, Token_sim.Stuck_bit (Bus.E3_request_token_phase, Bus.Stuck_at_1)) ];
      [ (5, Token_sim.Stuck_bit (Bus.E4_resource_token_phase, Bus.Stuck_at_1)) ]
    ]

(* Somewhere in the seed space a death severs an already registered path:
   the protocol restarts the whole cycle and still reaches the optimum. *)
let test_cycle_restart_reaches_optimum () =
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 400 do
    let rng = Prng.create (!seed + 4000) in
    let net, requests, free = random_scenario rng in
    let faults = random_faults rng net in
    let rep = Token_sim.run net ~requests ~free ~faults in
    let r = rep.Token_sim.recovery in
    if r.Token_sim.cycle_restarts >= 1 && r.Token_sim.completed then begin
      found := true;
      let degraded = degrade net rep.Token_sim.applied_faults in
      check Alcotest.int "optimum after restart"
        (dinic_on degraded ~requests ~free)
        rep.Token_sim.allocated
    end;
    incr seed
  done;
  check Alcotest.bool "a registered-path break was exercised" true !found

(* Schedule validation: bad element indices and negative clocks are
   rejected up front. *)
let test_fault_validation () =
  let net, requests, free = fig_scenario () in
  List.iter
    (fun faults ->
      match Token_sim.run net ~requests ~free ~faults with
      | _ -> Alcotest.fail "accepted a bad schedule"
      | exception Invalid_argument _ -> ())
    [ [ (-1, Token_sim.Dead_link 0) ];
      [ (0, Token_sim.Dead_link (Network.n_links net)) ];
      [ (0, Token_sim.Dead_box 999) ];
      [ (0, Token_sim.Dead_res (-2)) ] ]

(* --- status bus ----------------------------------------------------------- *)

let bus_events =
  [ Bus.E1_request_pending; Bus.E2_resource_ready;
    Bus.E3_request_token_phase; Bus.E4_resource_token_phase;
    Bus.E5_path_registration; Bus.E6_rs_received_token; Bus.E7_rq_bonded ]

(* Per-driver wired-OR: driving is idempotent, the bit reads high while
   any driver holds it, and drops only when the last one releases. *)
let bus_wired_or =
  qtest "wired-OR: bit high iff some driver holds it" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Prng.create (seed + 5000) in
      let bus = Bus.create () in
      let e = List.nth bus_events (Prng.int rng 7) in
      let n = 1 + Prng.int rng 8 in
      let held = Array.make n false in
      let ok = ref true in
      for _ = 1 to 40 do
        let d = Prng.int rng n in
        (match Prng.int rng 3 with
        | 0 ->
          Bus.drive bus ~driver:d e true;
          (* Idempotence: a second drive changes nothing. *)
          Bus.drive bus ~driver:d e true;
          held.(d) <- true
        | 1 ->
          Bus.drive bus ~driver:d e false;
          held.(d) <- false
        | _ ->
          Bus.release_driver bus ~driver:d;
          held.(d) <- false);
        let expect = Array.exists Fun.id held in
        if Bus.read bus e <> expect || Bus.driven bus e <> expect then
          ok := false
      done;
      !ok)

(* read / vector / vector_to_string tell one consistent story. *)
let bus_vector_consistent =
  qtest "read/vector/vector_to_string agree" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.create (seed + 6000) in
      let bus = Bus.create () in
      List.iter (fun e -> Bus.set bus e (Prng.bool rng)) bus_events;
      let v = Bus.vector bus in
      let s = Bus.vector_to_string v in
      String.length s = 7
      && List.for_all
           (fun e ->
             let b = Bus.read bus e in
             (v lsr Bus.bit e) land 1 = Bool.to_int b
             && s.[6 - Bus.bit e] = (if b then '1' else '0'))
           bus_events)

(* The latched trace grows by exactly one vector per tick and the clock
   counts the ticks. *)
let bus_trace_monotone =
  qtest "trace grows one latch per tick" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Prng.create (seed + 7000) in
      let bus = Bus.create () in
      let n = 1 + Prng.int rng 30 in
      let expected = ref [] in
      for _ = 1 to n do
        List.iter (fun e -> Bus.set bus e (Prng.bool rng)) bus_events;
        expected := Bus.vector bus :: !expected;
        Bus.tick bus
      done;
      Bus.clock bus = n && Bus.trace bus = List.rev !expected)

(* Forcing: a stuck-at overrides every driver on reads and latches,
   [driven] still shows the fault-free OR, and clearing restores it. *)
let test_bus_forcing () =
  let bus = Bus.create () in
  let e = Bus.E3_request_token_phase in
  Bus.drive bus ~driver:0 e true;
  Bus.force bus e (Some Bus.Stuck_at_0);
  check Alcotest.bool "stuck-at-0 masks the driver" false (Bus.read bus e);
  check Alcotest.bool "driven sees the raw OR" true (Bus.driven bus e);
  check Alcotest.bool "forced is queryable" true
    (Bus.forced bus e = Some Bus.Stuck_at_0);
  Bus.tick bus;
  check Alcotest.int "latched vector is the observed one" 0
    ((List.hd (Bus.trace bus) lsr Bus.bit e) land 1);
  Bus.force bus e (Some Bus.Stuck_at_1);
  Bus.drive bus ~driver:0 e false;
  check Alcotest.bool "stuck-at-1 holds the bit up" true (Bus.read bus e);
  check Alcotest.bool "driven sees the release" false (Bus.driven bus e);
  Bus.force bus e None;
  check Alcotest.bool "clearing restores the wired-OR" false (Bus.read bus e);
  check Alcotest.bool "no forcing left" true (Bus.forced bus e = None)

(* A dying element's register drops off every bit at once. *)
let test_bus_release_driver () =
  let bus = Bus.create () in
  List.iter (fun e -> Bus.drive bus ~driver:3 e true) bus_events;
  Bus.drive bus ~driver:4 Bus.E1_request_pending true;
  Bus.release_driver bus ~driver:3;
  check Alcotest.bool "other driver survives" true
    (Bus.read bus Bus.E1_request_pending);
  List.iter
    (fun e ->
      if e <> Bus.E1_request_pending then
        check Alcotest.bool (Bus.event_name e ^ " dropped") false
          (Bus.read bus e))
    bus_events

let suite =
  [
    recovery_differential;
    no_faults_no_recovery;
    recovery_deterministic;
    Alcotest.test_case "dead box mid-cycle" `Quick test_dead_box_mid_cycle;
    Alcotest.test_case "watchdog recovers a stuck phase" `Quick
      test_watchdog_recovers_stuck_phase;
    Alcotest.test_case "readback catches stuck-at-0" `Quick
      test_readback_catches_stuck_at_0;
    Alcotest.test_case "permanent stuck bit gives up bounded" `Quick
      test_permanent_stuck_gives_up;
    Alcotest.test_case "cycle restart reaches optimum" `Quick
      test_cycle_restart_reaches_optimum;
    Alcotest.test_case "fault schedule validation" `Quick test_fault_validation;
    bus_wired_or;
    bus_vector_consistent;
    bus_trace_monotone;
    Alcotest.test_case "bus stuck-at forcing" `Quick test_bus_forcing;
    Alcotest.test_case "bus release_driver" `Quick test_bus_release_driver;
  ]
