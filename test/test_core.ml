(* Tests for the paper's transformations and schedulers: Transformation 1
   (max-flow), Transformation 2 (min-cost with priorities), heterogeneous
   multicommodity scheduling, the heuristic baselines, the unified
   scheduler facade and the monitor architecture. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module T1 = Rsin_core.Transform1
module T2 = Rsin_core.Transform2
module Hetero = Rsin_core.Hetero
module Heuristic = Rsin_core.Heuristic
module Scheduler = Rsin_core.Scheduler
module Monitor = Rsin_core.Monitor
module Prng = Rsin_util.Prng

let check = Alcotest.check
let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* --- helpers ------------------------------------------------------------- *)

let pre_establish net (p, r) =
  match Builders.route_unique net ~proc:p ~res:r with
  | Some links -> ignore (Network.establish net links)
  | None -> Alcotest.fail "cannot pre-establish circuit"

(* Validity of a schedule: injective mapping within the populations, and
   circuits that can actually be established together. *)
let mapping_valid net ~requests ~free mapping circuits =
  let procs = List.map fst mapping and ress = List.map snd mapping in
  List.length (List.sort_uniq compare procs) = List.length procs
  && List.length (List.sort_uniq compare ress) = List.length ress
  && List.for_all (fun p -> List.mem p requests) procs
  && List.for_all (fun r -> List.mem r free) ress
  &&
  let scratch = Network.copy net in
  try
    List.iter (fun (_p, links) -> ignore (Network.establish scratch links)) circuits;
    (* each circuit starts at its processor and ends at its resource *)
    List.for_all2
      (fun (p, r) (p', links) ->
        p = p'
        && (match Network.link_src scratch (List.hd links) with
           | Network.Proc q -> q = p
           | _ -> false)
        &&
        match Network.link_dst scratch (List.nth links (List.length links - 1)) with
        | Network.Res q -> q = r
        | _ -> false)
      mapping circuits
  with Invalid_argument _ -> false

(* Brute-force optimum on unique-path networks: maximum subset of an
   injective request->resource assignment whose unique paths are pairwise
   link-disjoint. *)
let brute_force_max net ~requests ~free =
  let paths = Hashtbl.create 16 in
  List.iter
    (fun p ->
      List.iter
        (fun r ->
          match Builders.route_unique net ~proc:p ~res:r with
          | Some links -> Hashtbl.replace paths (p, r) links
          | None -> ())
        free)
    requests;
  let rec best requests used_res used_links =
    match requests with
    | [] -> 0
    | p :: rest ->
      let skip = best rest used_res used_links in
      let take =
        List.fold_left
          (fun acc r ->
            if List.mem r used_res then acc
            else
              match Hashtbl.find_opt paths (p, r) with
              | None -> acc
              | Some links ->
                if List.exists (fun l -> List.mem l used_links) links then acc
                else max acc (1 + best rest (r :: used_res) (links @ used_links)))
          0 free
      in
      max skip take
  in
  best requests [] []

let random_scenario rng =
  let n = 8 in
  let net =
    match Prng.int rng 3 with
    | 0 -> Builders.omega_paper n
    | 1 -> Builders.butterfly n
    | _ -> Builders.baseline n
  in
  (* random pre-occupied circuits *)
  for _ = 1 to Prng.int rng 3 do
    let p = Prng.int rng n and r = Prng.int rng n in
    match Builders.route_unique net ~proc:p ~res:r with
    | Some links -> ignore (Network.establish net links)
    | None -> ()
  done;
  let busy_p = ref [] and busy_r = ref [] in
  List.iter
    (fun (_, links) ->
      (match Network.link_src net (List.hd links) with
      | Network.Proc p -> busy_p := p :: !busy_p
      | _ -> ());
      match Network.link_dst net (List.nth links (List.length links - 1)) with
      | Network.Res r -> busy_r := r :: !busy_r
      | _ -> ())
    (Network.circuits net);
  let requests =
    List.filter
      (fun p -> (not (List.mem p !busy_p)) && Prng.bernoulli rng 0.5)
      (List.init n Fun.id)
  in
  let free =
    List.filter
      (fun r -> (not (List.mem r !busy_r)) && Prng.bernoulli rng 0.5)
      (List.init n Fun.id)
  in
  (net, requests, free)

(* --- Transformation 1 ------------------------------------------------------ *)

(* Paper Fig. 2: 8x8 Omega (paper numbering), p2-r6 and p4-r4 occupied,
   p1,p3,p5,p7,p8 requesting, r1,r3,r5,r7,r8 free. Optimal = 5/5; the
   paper's counterexample mapping reaches only 4. *)
let test_fig2_optimal () =
  let net = Builders.omega_paper 8 in
  pre_establish net (1, 5); (* p2 -> r6, 0-indexed *)
  pre_establish net (3, 3); (* p4 -> r4 *)
  let requests = [ 0; 2; 4; 6; 7 ] and free = [ 0; 2; 4; 6; 7 ] in
  let o = T1.schedule net ~requests ~free in
  check Alcotest.int "all five allocated" 5 o.T1.allocated;
  check Alcotest.int "none blocked" 0 o.T1.blocked;
  check Alcotest.bool "valid" true
    (mapping_valid net ~requests ~free o.T1.mapping o.T1.circuits)

let test_fig2_bad_mapping_blocks () =
  let net = Builders.omega_paper 8 in
  pre_establish net (1, 5);
  pre_establish net (3, 3);
  (* the paper's suboptimal mapping: (p1,r1),(p3,r5),(p5,r3),(p7,r7),(p8,r8) *)
  let bad = [ (0, 0); (2, 4); (4, 2); (6, 6); (7, 7) ] in
  let allocated =
    List.fold_left
      (fun acc (p, r) ->
        match Builders.route_unique net ~proc:p ~res:r with
        | Some links ->
          ignore (Network.establish net links);
          acc + 1
        | None -> acc)
      0 bad
  in
  check Alcotest.int "paper's mapping strands one request" 4 allocated

let test_t1_no_requests () =
  let net = Builders.omega 8 in
  let o = T1.schedule net ~requests:[] ~free:[ 0; 1 ] in
  check Alcotest.int "nothing to do" 0 o.T1.allocated

let test_t1_no_free () =
  let net = Builders.omega 8 in
  let o = T1.schedule net ~requests:[ 0; 1 ] ~free:[] in
  check Alcotest.int "no resources" 0 o.T1.allocated;
  check Alcotest.int "all blocked" 2 o.T1.blocked

let test_t1_crossbar_always_full () =
  (* A crossbar never blocks: allocation = min(x, y). *)
  let net = Builders.crossbar ~n_procs:5 ~n_res:3 in
  let o = T1.schedule net ~requests:[ 0; 1; 2; 3; 4 ] ~free:[ 0; 1; 2 ] in
  check Alcotest.int "min(x,y)" 3 o.T1.allocated

let test_t1_duplicates_ignored () =
  let net = Builders.omega 8 in
  let o = T1.schedule net ~requests:[ 0; 0; 1 ] ~free:[ 2; 2 ] in
  check Alcotest.int "dedup requests" 2 o.T1.requested;
  check Alcotest.int "dedup free" 1 o.T1.allocated

let test_t1_bad_input () =
  let net = Builders.omega 8 in
  Alcotest.check_raises "bad processor"
    (Invalid_argument "Transform1.build: bad processor") (fun () ->
      ignore (T1.build net ~requests:[ 8 ] ~free:[ 0 ]));
  Alcotest.check_raises "bad resource"
    (Invalid_argument "Transform1.build: bad resource") (fun () ->
      ignore (T1.build net ~requests:[ 0 ] ~free:[ -1 ]))

let test_t1_algorithms_agree () =
  let rng = Prng.create 1234 in
  for _ = 1 to 50 do
    let net, requests, free = random_scenario rng in
    if requests <> [] && free <> [] then begin
      let a = T1.schedule net ~requests ~free in
      List.iter
        (fun s ->
          let module S = (val s : Rsin_flow.Solver.S) in
          let b = T1.solve_with s (T1.build net ~requests ~free) in
          check Alcotest.int
            (Printf.sprintf "Dinic = %s" S.name)
            a.T1.allocated b.T1.allocated)
        Rsin_flow.Solver.all
    end
  done

let t1_matches_bruteforce =
  qtest "Transformation 1 = brute force on unique-path nets" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let net = Builders.omega_paper 8 in
      for _ = 1 to Prng.int rng 3 do
        let p = Prng.int rng 8 and r = Prng.int rng 8 in
        match Builders.route_unique net ~proc:p ~res:r with
        | Some links -> ignore (Network.establish net links)
        | None -> ()
      done;
      let busy_p, busy_r = Rsin_sim.Workload.occupied_endpoints net in
      let all = List.init 8 Fun.id in
      let requests =
        List.filter
          (fun p -> (not (List.mem p busy_p)) && Prng.bernoulli rng 0.4)
          all
      in
      let free =
        List.filter
          (fun r -> (not (List.mem r busy_r)) && Prng.bernoulli rng 0.4)
          all
      in
      let o = T1.schedule net ~requests ~free in
      o.T1.allocated = brute_force_max net ~requests ~free)

let t1_valid_circuits =
  qtest "Transformation 1 outcomes are valid schedules" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let net, requests, free = random_scenario rng in
      let o = T1.schedule net ~requests ~free in
      mapping_valid net ~requests ~free o.T1.mapping o.T1.circuits)

let test_t1_commit () =
  let net = Builders.omega 8 in
  let o = T1.schedule net ~requests:[ 0; 1 ] ~free:[ 2; 3 ] in
  let ids = T1.commit net o in
  check Alcotest.int "circuits committed" 2 (List.length ids);
  check Alcotest.int "live" 2 (List.length (Network.circuits net));
  (* committed circuits consume capacity for later rounds *)
  let o2 = T1.schedule net ~requests:[ 0 ] ~free:[ 2 ] in
  check Alcotest.int "proc 0 now busy upstream" 0 o2.T1.allocated

let test_t1_graph_shape () =
  (* The transformed graph must contain s, t, one node per box, one per
     requesting processor, one per free resource. *)
  let net = Builders.omega 8 in
  let tr = T1.build net ~requests:[ 0; 1; 2 ] ~free:[ 4; 5 ] in
  let g = T1.graph tr in
  check Alcotest.int "node count" (2 + 12 + 3 + 2) (Rsin_flow.Graph.node_count g);
  check Alcotest.bool "proc node present" true (T1.proc_node tr 0 <> None);
  check Alcotest.bool "non-requesting absent" true (T1.proc_node tr 3 = None);
  check Alcotest.bool "free res present" true (T1.res_node tr 4 <> None);
  check Alcotest.bool "busy res absent" true (T1.res_node tr 0 = None);
  check Alcotest.int "max allocatable" 2 (T1.max_allocatable tr);
  (* arcs: 3 S + 2 T + free links whose endpoints exist *)
  check Alcotest.bool "arc count sane" true (Rsin_flow.Graph.arc_count g > 5)

let test_t1_bottleneck () =
  (* p0 and p1 share the first-stage box, r6 and r7 the last-stage box:
     the unique middle link is the bottleneck, and the min cut names it. *)
  let net = Builders.omega_paper 8 in
  let tr = T1.build net ~requests:[ 0; 1 ] ~free:[ 6; 7 ] in
  let o = T1.solve tr in
  check Alcotest.int "one allocated" 1 o.T1.allocated;
  let cut = T1.bottleneck tr in
  check Alcotest.int "cut size = flow value" o.T1.allocated (List.length cut);
  (match cut with
  | [ `Link l ] ->
    (* the binding constraint is an interior link, not an endpoint *)
    (match (Network.link_src net l, Network.link_dst net l) with
    | Network.Box_out _, Network.Box_in _ -> ()
    | _ -> Alcotest.fail "expected an inter-stage bottleneck link")
  | _ -> Alcotest.fail "expected exactly one bottleneck link")

let bottleneck_matches_maxflow =
  qtest "min-cut size always equals allocation" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let net, requests, free = random_scenario rng in
      if requests = [] || free = [] then true
      else begin
        let tr = T1.build net ~requests ~free in
        let o = T1.solve tr in
        List.length (T1.bottleneck tr) = o.T1.allocated
      end)

(* --- Transformation 2 ------------------------------------------------------ *)

(* Fig. 5 structure: p3, p5, p8 requesting with priorities; r1, r3, r5,
   r7, r8 free with preferences. With a free network all three must be
   allocated, to the three highest-preference resources. *)
let test_fig5_structure () =
  let net = Builders.omega_paper 8 in
  let requests = [ (2, 4); (4, 9); (7, 2) ] in
  let free = [ (0, 7); (2, 2); (4, 9); (6, 6); (7, 3) ] in
  let o = T2.schedule net ~requests ~free in
  check Alcotest.int "all allocated" 3 o.T2.allocated;
  check Alcotest.(list int) "no bypass" [] o.T2.bypassed;
  let used = List.sort compare (List.map snd o.T2.mapping) in
  check Alcotest.(list int) "three most preferred resources" [ 0; 4; 6 ] used

let test_t2_priority_wins () =
  (* Crossbar with a single resource: the high-priority request gets it. *)
  let net = Builders.crossbar ~n_procs:2 ~n_res:1 in
  let o = T2.schedule net ~requests:[ (0, 1); (1, 9) ] ~free:[ (0, 5) ] in
  check Alcotest.int "one allocated" 1 o.T2.allocated;
  check Alcotest.(list (pair int int)) "p1 wins" [ (1, 0) ] o.T2.mapping;
  check Alcotest.(list int) "p0 bypassed" [ 0 ] o.T2.bypassed

let test_t2_preference_chosen () =
  let net = Builders.crossbar ~n_procs:1 ~n_res:3 in
  let o = T2.schedule net ~requests:[ (0, 5) ] ~free:[ (0, 2); (1, 8); (2, 5) ] in
  check Alcotest.(list (pair int int)) "picks pref 8" [ (0, 1) ] o.T2.mapping

let test_t2_allocation_beats_priority () =
  (* Theorem 3: maximizing the number of allocations dominates priority
     order. Two resources, two requests; even if one request has far
     higher priority, both must be allocated. *)
  let net = Builders.crossbar ~n_procs:2 ~n_res:2 in
  let o = T2.schedule net ~requests:[ (0, 1); (1, 10) ] ~free:[ (0, 1); (1, 10) ] in
  check Alcotest.int "both allocated" 2 o.T2.allocated;
  (* and the high-priority request gets the high-preference resource *)
  check Alcotest.bool "assortative" true (List.mem (1, 1) o.T2.mapping)

let test_t2_solvers_agree () =
  let rng = Prng.create 77 in
  for _ = 1 to 40 do
    let net, requests, free = random_scenario rng in
    if requests <> [] && free <> [] then begin
      let reqs = List.map (fun p -> (p, 1 + Prng.int rng 10)) requests in
      let frees = List.map (fun r -> (r, 1 + Prng.int rng 10)) free in
      let a = T2.schedule ~solver:T2.Ssp net ~requests:reqs ~free:frees in
      let b = T2.schedule ~solver:T2.Out_of_kilter net ~requests:reqs ~free:frees in
      check Alcotest.int "allocated agree" a.T2.allocated b.T2.allocated;
      check Alcotest.int "cost agree" a.T2.allocation_cost b.T2.allocation_cost
    end
  done

let t2_allocates_like_t1 =
  qtest "Transformation 2 allocates as many as Transformation 1" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let net, requests, free = random_scenario rng in
      let reqs = List.map (fun p -> (p, 1 + Prng.int rng 10)) requests in
      let frees = List.map (fun r -> (r, 1 + Prng.int rng 10)) free in
      let o1 = T1.schedule net ~requests ~free in
      let o2 = T2.schedule net ~requests:reqs ~free:frees in
      o1.T1.allocated = o2.T2.allocated)

let t2_valid_circuits =
  qtest "Transformation 2 outcomes are valid schedules" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let net, requests, free = random_scenario rng in
      let reqs = List.map (fun p -> (p, 1 + Prng.int rng 10)) requests in
      let frees = List.map (fun r -> (r, 1 + Prng.int rng 10)) free in
      let o = T2.schedule net ~requests:reqs ~free:frees in
      mapping_valid net ~requests ~free o.T2.mapping o.T2.circuits
      && List.length o.T2.mapping + List.length o.T2.bypassed
         = List.length requests)

let test_t2_validation () =
  let net = Builders.omega 8 in
  Alcotest.check_raises "duplicate processors"
    (Invalid_argument "Transform2.build: duplicate processor") (fun () ->
      ignore (T2.build net ~requests:[ (0, 1); (0, 2) ] ~free:[ (0, 1) ]));
  Alcotest.check_raises "negative priority"
    (Invalid_argument "Transform2.build: negative priority") (fun () ->
      ignore (T2.build net ~requests:[ (0, -1) ] ~free:[ (0, 1) ]))

(* --- Heterogeneous --------------------------------------------------------- *)

let test_hetero_single_type_reduces_to_t1 () =
  let rng = Prng.create 5 in
  for _ = 1 to 20 do
    let net, requests, free = random_scenario rng in
    let spec =
      Hetero.
        { requests = List.map (fun p -> (p, 0, 0)) requests;
          free = List.map (fun r -> (r, 0, 0)) free }
    in
    let lp = Hetero.schedule_lp net spec in
    let t1 = T1.schedule net ~requests ~free in
    check Alcotest.int "LP = max-flow" t1.T1.allocated lp.Hetero.allocated
  done

let test_hetero_types_respected () =
  let net = Builders.crossbar ~n_procs:4 ~n_res:4 in
  let spec =
    Hetero.
      { requests = [ (0, 0, 0); (1, 0, 0); (2, 1, 0); (3, 1, 0) ];
        free = [ (0, 0, 0); (1, 1, 0); (2, 1, 0); (3, 2, 0) ] }
  in
  let o = Hetero.schedule_lp net spec in
  (* one type-0 resource and two type-1 resources are usable *)
  check Alcotest.int "allocated" 3 o.Hetero.allocated;
  List.iter
    (fun (p, r) ->
      let _, pt, _ = List.find (fun (p', _, _) -> p' = p) spec.Hetero.requests in
      let _, rt, _ = List.find (fun (r', _, _) -> r' = r) spec.Hetero.free in
      check Alcotest.int "type match" pt rt)
    o.Hetero.mapping;
  check Alcotest.bool "LP bound present" true (o.Hetero.lp_objective <> None)

let test_hetero_no_free_of_type () =
  let net = Builders.crossbar ~n_procs:2 ~n_res:1 in
  let spec =
    Hetero.{ requests = [ (0, 0, 0); (1, 1, 0) ]; free = [ (0, 0, 0) ] }
  in
  let o = Hetero.schedule_lp net spec in
  check Alcotest.int "only matching type allocated" 1 o.Hetero.allocated;
  check Alcotest.(list (pair int int)) "p0 to r0" [ (0, 0) ] o.Hetero.mapping

let hetero_lp_at_least_greedy =
  qtest "multicommodity LP >= greedy sequential" ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let net, requests, free = random_scenario rng in
      let spec =
        Rsin_sim.Workload.hetero_spec rng ~types:(1 + Prng.int rng 3) ~requests
          ~free
      in
      let lp = Hetero.schedule_lp net spec in
      let greedy = Hetero.schedule_greedy net spec in
      lp.Hetero.allocated >= greedy.Hetero.allocated)

let hetero_valid =
  qtest "heterogeneous outcomes are valid schedules" ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let net, requests, free = random_scenario rng in
      let spec =
        Rsin_sim.Workload.hetero_spec rng ~types:(1 + Prng.int rng 3) ~requests
          ~free
      in
      let o = Hetero.schedule_lp net spec in
      mapping_valid net ~requests ~free o.Hetero.mapping o.Hetero.circuits)

let test_hetero_min_cost_priorities () =
  (* Two same-type requests compete for one resource: higher priority
     wins under Min_cost. *)
  let net = Builders.crossbar ~n_procs:2 ~n_res:1 in
  let spec =
    Hetero.{ requests = [ (0, 0, 2); (1, 0, 9) ]; free = [ (0, 0, 5) ] }
  in
  let o = Hetero.schedule_lp ~objective:Hetero.Min_cost net spec in
  check Alcotest.int "one allocated" 1 o.Hetero.allocated;
  check Alcotest.(list (pair int int)) "priority 9 wins" [ (1, 0) ] o.Hetero.mapping;
  check Alcotest.bool "cost reported" true (o.Hetero.cost <> None)

let test_hetero_per_type_counts () =
  let net = Builders.crossbar ~n_procs:3 ~n_res:3 in
  let spec =
    Hetero.
      { requests = [ (0, 0, 0); (1, 0, 0); (2, 1, 0) ];
        free = [ (0, 0, 0); (1, 1, 0); (2, 1, 0) ] }
  in
  let o = Hetero.schedule_lp net spec in
  let find ty = List.find (fun (t, _, _) -> t = ty) o.Hetero.per_type in
  let _, req0, alloc0 = find 0 in
  check Alcotest.int "type0 requested" 2 req0;
  check Alcotest.int "type0 allocated (one resource)" 1 alloc0;
  let _, req1, alloc1 = find 1 in
  check Alcotest.int "type1 requested" 1 req1;
  check Alcotest.int "type1 allocated" 1 alloc1

let test_hetero_integral_on_mins () =
  (* The paper: restricted topologies have integral multicommodity
     optima. Check the LP solution is integral across random MIN
     scenarios. *)
  let rng = Prng.create 31 in
  for _ = 1 to 20 do
    let net, requests, free = random_scenario rng in
    let spec = Rsin_sim.Workload.hetero_spec rng ~types:2 ~requests ~free in
    let o = Hetero.schedule_lp net spec in
    check Alcotest.bool "integral optimum" true o.Hetero.integral
  done

let test_hetero_min_cost_missing_type () =
  (* a request whose type has no free resource bypasses under Min_cost *)
  let net = Builders.crossbar ~n_procs:2 ~n_res:1 in
  let spec =
    Hetero.{ requests = [ (0, 0, 3); (1, 1, 9) ]; free = [ (0, 0, 1) ] }
  in
  let o = Hetero.schedule_lp ~objective:Hetero.Min_cost net spec in
  check Alcotest.int "only the matching type served" 1 o.Hetero.allocated;
  check Alcotest.(list (pair int int)) "p0 served" [ (0, 0) ] o.Hetero.mapping

(* --- Heuristics ------------------------------------------------------------- *)

let heuristic_never_beats_optimal =
  qtest "heuristics never beat the optimal scheduler" ~count:80
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let net, requests, free = random_scenario rng in
      let opt = (T1.schedule net ~requests ~free).T1.allocated in
      List.for_all
        (fun policy ->
          (Heuristic.schedule net ~requests ~free policy).Heuristic.allocated
          <= opt)
        [ Heuristic.First_fit; Heuristic.Random_fit (Prng.create seed);
          Heuristic.Address_map (Prng.create seed) ])

let heuristic_valid =
  qtest "heuristic outcomes are valid schedules" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let net, requests, free = random_scenario rng in
      let o = Heuristic.schedule net ~requests ~free Heuristic.First_fit in
      mapping_valid net ~requests ~free o.Heuristic.mapping o.Heuristic.circuits)

let test_heuristic_does_not_mutate () =
  let net = Builders.omega 8 in
  let free_before = List.length (Network.free_links net) in
  ignore (Heuristic.schedule net ~requests:[ 0; 1; 2 ] ~free:[ 0; 1; 2 ] Heuristic.First_fit);
  check Alcotest.int "network untouched" free_before
    (List.length (Network.free_links net))

let test_heuristic_commit () =
  let net = Builders.omega 8 in
  let o = Heuristic.schedule net ~requests:[ 0; 1 ] ~free:[ 4; 5 ] Heuristic.First_fit in
  let ids = Heuristic.commit net o in
  check Alcotest.int "committed" (List.length o.Heuristic.circuits) (List.length ids)

(* --- Scheduler facade --------------------------------------------------------- *)

let test_infer () =
  let req = Scheduler.request and res = Scheduler.resource in
  check Alcotest.bool "homogeneous" true
    (Scheduler.infer [ req 0; req 1 ] [ res 0 ] = Scheduler.Homogeneous);
  check Alcotest.bool "prioritized" true
    (Scheduler.infer [ req ~priority:2 0; req 1 ] [ res 0 ]
    = Scheduler.Homogeneous_prioritized);
  check Alcotest.bool "heterogeneous" true
    (Scheduler.infer [ req ~rtype:1 0 ] [ res 0 ] = Scheduler.Heterogeneous);
  check Alcotest.bool "hetero+prio" true
    (Scheduler.infer [ req ~rtype:1 0 ] [ res ~preference:3 0; res 1 ]
    = Scheduler.Heterogeneous_prioritized)

let test_scheduler_dispatch () =
  let net = Builders.omega_paper 8 in
  let requests = List.map Scheduler.request [ 0; 2; 4 ] in
  let resources = List.map Scheduler.resource [ 1; 3; 5 ] in
  let r = Scheduler.schedule net ~requests ~resources in
  check Alcotest.bool "homogeneous used" true (r.Scheduler.discipline = Scheduler.Homogeneous);
  check Alcotest.int "all allocated" 3 r.Scheduler.allocated;
  let ids = Scheduler.commit net r in
  check Alcotest.int "committed" 3 (List.length ids)

let test_scheduler_prioritized_dispatch () =
  let net = Builders.crossbar ~n_procs:2 ~n_res:1 in
  let r =
    Scheduler.schedule net
      ~requests:[ Scheduler.request ~priority:1 0; Scheduler.request ~priority:5 1 ]
      ~resources:[ Scheduler.resource 0 ]
  in
  check Alcotest.bool "prioritized" true
    (r.Scheduler.discipline = Scheduler.Homogeneous_prioritized);
  check Alcotest.(list (pair int int)) "winner" [ (1, 0) ] r.Scheduler.mapping;
  check Alcotest.bool "cost present" true
    (match r.Scheduler.detail with Scheduler.Mincost _ -> true | _ -> false)

let test_scheduler_hetero_dispatch () =
  let net = Builders.crossbar ~n_procs:2 ~n_res:2 in
  let r =
    Scheduler.schedule net
      ~requests:[ Scheduler.request ~rtype:0 0; Scheduler.request ~rtype:1 1 ]
      ~resources:[ Scheduler.resource ~rtype:1 0; Scheduler.resource ~rtype:0 1 ]
  in
  check Alcotest.bool "hetero" true (r.Scheduler.discipline = Scheduler.Heterogeneous);
  check Alcotest.int "both allocated" 2 r.Scheduler.allocated;
  check Alcotest.bool "lp bound" true
    (Scheduler.lp_bound_of r.Scheduler.detail <> None)

(* --- Monitor ------------------------------------------------------------------ *)

let test_monitor_lifecycle () =
  let net = Builders.omega 8 in
  let m = Monitor.create net in
  Monitor.submit m 0;
  Monitor.submit m 1;
  Monitor.submit m 1; (* duplicate ignored *)
  check Alcotest.(list int) "pending" [ 0; 1 ] (Monitor.pending m);
  (* no resources ready: cycle does nothing *)
  let r0 = Monitor.run_cycle m in
  check Alcotest.int "nothing allocated" 0 (List.length r0.Monitor.allocated);
  Monitor.resource_ready m 5;
  Monitor.resource_ready m 6;
  let r1 = Monitor.run_cycle m in
  check Alcotest.int "both allocated" 2 (List.length r1.Monitor.allocated);
  check Alcotest.bool "instructions counted" true (r1.Monitor.instructions > 0);
  check Alcotest.(list int) "queue drained" [] (Monitor.pending m);
  check Alcotest.(list int) "resources consumed" [] (Monitor.free_resources m);
  check Alcotest.int "circuits live" 2
    (List.length (Network.circuits (Monitor.network m)));
  (* release a circuit, mark the resource ready again *)
  (match r1.Monitor.circuit_ids with
  | id :: _ -> Monitor.task_done m ~circuit:id
  | [] -> Alcotest.fail "expected circuits");
  check Alcotest.int "one circuit left" 1
    (List.length (Network.circuits (Monitor.network m)));
  check Alcotest.bool "cumulative instructions" true
    (Monitor.total_instructions m >= r1.Monitor.instructions)

(* Starvation scenario: p0 and p1 contend for the single interior link
   toward r6/r7 every cycle; the winner immediately resubmits. Without
   aging the deterministic tie-break can starve the loser; with aging
   the loser's waiting time eventually outranks the winner. *)
let run_contention_rounds ~aging rounds =
  let m = Monitor.create ~aging (Builders.omega_paper 8) in
  Monitor.submit m 0;
  Monitor.submit m 1;
  Monitor.resource_ready m 6;
  Monitor.resource_ready m 7;
  let wins = Array.make 2 0 in
  for _ = 1 to rounds do
    let rep = Monitor.run_cycle m in
    List.iter
      (fun (p, r) ->
        wins.(p) <- wins.(p) + 1;
        (* task completes instantly: free the circuit and the resource,
           and the processor raises its next request *)
        (match rep.Monitor.circuit_ids with
        | id :: _ -> Monitor.task_done m ~circuit:id
        | [] -> ());
        Monitor.resource_ready m r;
        Monitor.submit m p)
      rep.Monitor.allocated
  done;
  wins

let test_monitor_aging_prevents_starvation () =
  let aged = run_contention_rounds ~aging:true 10 in
  check Alcotest.bool "both processors served with aging" true
    (aged.(0) > 0 && aged.(1) > 0);
  let plain = run_contention_rounds ~aging:false 10 in
  check Alcotest.int "all rounds allocated something" 10 (plain.(0) + plain.(1));
  check Alcotest.int "aged rounds too" 10 (aged.(0) + aged.(1));
  (* the deterministic tie-break starves p1 completely without aging;
     waiting-time priorities make the two processors alternate *)
  check Alcotest.int "plain run starves p1" 0 plain.(1);
  check Alcotest.bool "aging shares service fairly" true
    (abs (aged.(0) - aged.(1)) <= 2)

let test_monitor_waits_tracked () =
  let m = Monitor.create (Builders.crossbar ~n_procs:2 ~n_res:1) in
  Monitor.submit m 0;
  Monitor.submit m 1;
  Monitor.resource_ready m 0;
  ignore (Monitor.run_cycle m);
  (* one served, the other has waited one cycle *)
  (match Monitor.waits m with
  | [ (_, w) ] -> check Alcotest.int "one cycle waited" 1 w
  | other -> Alcotest.failf "expected one waiter, got %d" (List.length other))

(* Allocation must prune the winner's wait entry (and only the
   winner's), and the pending queue must stay FIFO across cycles. *)
let test_monitor_waits_pruned_on_allocation () =
  let m = Monitor.create (Builders.crossbar ~n_procs:2 ~n_res:1) in
  Monitor.submit m 0;
  Monitor.submit m 1;
  Monitor.resource_ready m 0;
  let r = Monitor.run_cycle m in
  let served =
    match r.Monitor.allocated with
    | [ (p, _) ] -> p
    | _ -> Alcotest.fail "expected exactly one allocation"
  in
  let waiter = 1 - served in
  check
    Alcotest.(list (pair int int))
    "loser kept, winner pruned"
    [ (waiter, 1) ]
    (Monitor.waits m);
  (* resubmission after service starts from a fresh wait count *)
  Monitor.submit m served;
  check
    Alcotest.(list (pair int int))
    "fresh wait after resubmission"
    [ (waiter, 1); (served, 0) ]
    (Monitor.waits m);
  check Alcotest.(list int) "pending stays FIFO" [ waiter; served ]
    (Monitor.pending m)

let test_monitor_blocked_accounting () =
  let m = Monitor.create (Builders.crossbar ~n_procs:3 ~n_res:1) in
  List.iter (Monitor.submit m) [ 0; 1; 2 ];
  Monitor.resource_ready m 0;
  let r = Monitor.run_cycle m in
  check Alcotest.int "one allocated" 1 (List.length r.Monitor.allocated);
  check Alcotest.int "two left pending" 2 r.Monitor.blocked

let suite =
  [
    Alcotest.test_case "fig2: optimal mapping allocates 5/5" `Quick test_fig2_optimal;
    Alcotest.test_case "fig2: paper's bad mapping allocates 4/5" `Quick
      test_fig2_bad_mapping_blocks;
    Alcotest.test_case "t1 no requests" `Quick test_t1_no_requests;
    Alcotest.test_case "t1 no free resources" `Quick test_t1_no_free;
    Alcotest.test_case "t1 crossbar never blocks" `Quick test_t1_crossbar_always_full;
    Alcotest.test_case "t1 duplicates ignored" `Quick test_t1_duplicates_ignored;
    Alcotest.test_case "t1 bad input" `Quick test_t1_bad_input;
    Alcotest.test_case "t1 Dinic = Edmonds-Karp" `Quick test_t1_algorithms_agree;
    t1_matches_bruteforce;
    t1_valid_circuits;
    Alcotest.test_case "t1 commit" `Quick test_t1_commit;
    Alcotest.test_case "t1 graph shape" `Quick test_t1_graph_shape;
    Alcotest.test_case "t1 bottleneck diagnosis" `Quick test_t1_bottleneck;
    bottleneck_matches_maxflow;
    Alcotest.test_case "fig5: prioritized structure" `Quick test_fig5_structure;
    Alcotest.test_case "t2 priority wins" `Quick test_t2_priority_wins;
    Alcotest.test_case "t2 preference chosen" `Quick test_t2_preference_chosen;
    Alcotest.test_case "t2 allocation beats priority" `Quick
      test_t2_allocation_beats_priority;
    Alcotest.test_case "t2 SSP = out-of-kilter" `Quick test_t2_solvers_agree;
    t2_allocates_like_t1;
    t2_valid_circuits;
    Alcotest.test_case "t2 validation" `Quick test_t2_validation;
    Alcotest.test_case "hetero single type = t1" `Quick
      test_hetero_single_type_reduces_to_t1;
    Alcotest.test_case "hetero types respected" `Quick test_hetero_types_respected;
    Alcotest.test_case "hetero missing type" `Quick test_hetero_no_free_of_type;
    hetero_lp_at_least_greedy;
    hetero_valid;
    Alcotest.test_case "hetero min-cost priorities" `Quick
      test_hetero_min_cost_priorities;
    Alcotest.test_case "hetero per-type counts" `Quick test_hetero_per_type_counts;
    Alcotest.test_case "hetero integral optima on MINs" `Quick
      test_hetero_integral_on_mins;
    Alcotest.test_case "hetero min-cost missing type" `Quick
      test_hetero_min_cost_missing_type;
    heuristic_never_beats_optimal;
    heuristic_valid;
    Alcotest.test_case "heuristic does not mutate" `Quick test_heuristic_does_not_mutate;
    Alcotest.test_case "heuristic commit" `Quick test_heuristic_commit;
    Alcotest.test_case "scheduler infer" `Quick test_infer;
    Alcotest.test_case "scheduler homogeneous dispatch" `Quick test_scheduler_dispatch;
    Alcotest.test_case "scheduler prioritized dispatch" `Quick
      test_scheduler_prioritized_dispatch;
    Alcotest.test_case "scheduler hetero dispatch" `Quick test_scheduler_hetero_dispatch;
    Alcotest.test_case "monitor lifecycle" `Quick test_monitor_lifecycle;
    Alcotest.test_case "monitor blocked accounting" `Quick
      test_monitor_blocked_accounting;
    Alcotest.test_case "monitor aging prevents starvation" `Quick
      test_monitor_aging_prevents_starvation;
    Alcotest.test_case "monitor waits tracked" `Quick test_monitor_waits_tracked;
    Alcotest.test_case "monitor waits pruned on allocation" `Quick
      test_monitor_waits_pruned_on_allocation;
  ]
