(* The flat CSR flow core (Rsin_flow.Csr) vs the mutable-adjacency
   Graph: structural invariants of the emission (check_rev_pairing),
   state-accessor agreement under random mutation, and the differential
   guarantees of the registry solvers (dinic-csr/mincost-csr) and of the
   warm engine's Csr backend — identical max-flow value and total served
   priority on every topology family, including degraded (fault-masked)
   networks and hundreds of warm churn cycles. *)

module Graph = Rsin_flow.Graph
module Csr = Rsin_flow.Csr
module Solver = Rsin_flow.Solver
module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Netgraph = Rsin_core.Netgraph
module Scheduler = Rsin_core.Scheduler
module T1 = Rsin_core.Transform1
module T2 = Rsin_core.Transform2
module Workload = Rsin_sim.Workload
module Fault = Rsin_fault.Fault
module Incremental = Rsin_engine.Incremental
module Engine = Rsin_engine.Engine
module Prng = Rsin_util.Prng

let check = Alcotest.check

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let topologies =
  [ ("omega", fun () -> Builders.omega 8);
    ("butterfly", fun () -> Builders.butterfly 8);
    ("benes", fun () -> Builders.benes 8);
    ("clos", fun () -> Builders.clos ~m:3 ~n:2 ~r:4);
    ("crossbar", fun () -> Builders.crossbar ~n_procs:6 ~n_res:6);
    ("delta", fun () -> Builders.delta ~radix:2 ~stages:3);
    ("extra_stage", fun () -> Builders.extra_stage_omega 8 ~extra:1) ]

(* A random scenario over a partially occupied, partially *broken*
   network: preoccupied circuits exercise step T4's occupancy drops,
   random element downs exercise the health mask. *)
let scenario ?(faults = true) seed (name, build) =
  let rng = Prng.create (Hashtbl.hash (name, seed)) in
  let net = build () in
  ignore (Workload.preoccupy rng net ~circuits:(Prng.int rng 3));
  if faults then begin
    for l = 0 to Network.n_links net - 1 do
      if Prng.float rng 1.0 < 0.06 then Network.set_link_up net l false
    done;
    for b = 0 to Network.n_boxes net - 1 do
      if Prng.float rng 1.0 < 0.05 then Network.set_box_up net b false
    done;
    for r = 0 to Network.n_res net - 1 do
      if Prng.float rng 1.0 < 0.05 then Network.set_res_up net r false
    done
  end;
  let requests, free = Workload.snapshot rng net in
  let busy_p, busy_r = Workload.occupied_endpoints net in
  let requests = List.filter (fun p -> not (List.mem p busy_p)) requests in
  let free = List.filter (fun r -> not (List.mem r busy_r)) free in
  (rng, net, requests, free)

(* --- of_graph invariants and accessor agreement -------------------------- *)

(* A random residual network: arbitrary arcs, capacities, costs, and a
   random feasible flow pushed through Graph.push on both sides. *)
let random_graph rng =
  let g = Graph.create () in
  let n = 2 + Prng.int rng 9 in
  ignore (Graph.add_nodes g n);
  let arcs = 1 + Prng.int rng 25 in
  for _ = 1 to arcs do
    let s = Prng.int rng n in
    let d = (s + 1 + Prng.int rng (n - 1)) mod n in
    ignore
      (Graph.add_arc g ~cost:(Prng.int rng 7 - 3) ~src:s ~dst:d
         ~cap:(Prng.int rng 4))
  done;
  (* Random pushes on random sides leave a valid residual state. *)
  for _ = 1 to 2 * arcs do
    let a = Prng.int rng (2 * Graph.arc_count g) in
    let room = Graph.capacity g a in
    if room > 0 then Graph.push g a (1 + Prng.int rng room)
  done;
  g

let agree g c =
  let ok = ref true in
  let expect name a want got =
    if want <> got then begin
      ok := false;
      QCheck.Test.fail_reportf "arc %d: %s: graph %d, csr %d" a name want got
    end
  in
  Graph.iter_forward_arcs g (fun a ->
      expect "capacity" a (Graph.capacity g a) (Csr.capacity c a);
      expect "residual capacity" a
        (Graph.capacity g (a + 1))
        (Csr.capacity c (a + 1));
      expect "flow" a (Graph.flow g a) (Csr.flow c a);
      expect "cost" a (Graph.cost g a) (Csr.cost c a);
      expect "residual cost" a (Graph.cost g (a + 1)) (Csr.cost c (a + 1));
      expect "original" a
        (Graph.original_capacity g a)
        (Csr.original_capacity c a));
  for v = 0 to Graph.node_count g - 1 do
    expect "node out-flow" v (Graph.out_flow g v) (Csr.flow_value c ~source:v)
  done;
  expect "total cost" (-1) (Graph.total_cost g) (Csr.total_cost c);
  !ok

let test_of_graph_invariants =
  qtest "of_graph: rev pairing + accessor agreement on random graphs"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let g = random_graph rng in
      let c = Csr.of_graph g in
      (match Csr.check_rev_pairing c with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "rev pairing: %s" e);
      agree g c)

let test_mutation_agreement =
  qtest "random mirrored mutations keep Graph and Csr in agreement"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let g = random_graph rng in
      let c = Csr.of_graph g in
      let pairs = Graph.arc_count g in
      for _ = 1 to 60 do
        let a = 2 * Prng.int rng pairs in
        match Prng.int rng 5 with
        | 0 ->
          let cap = Graph.flow g a + Prng.int rng 3 in
          Graph.set_capacity g a cap;
          Csr.set_capacity c a cap
        | 1 ->
          let cost = Prng.int rng 9 - 4 in
          Graph.set_cost g a cost;
          Csr.set_cost c a cost
        | 2 ->
          let f = Prng.int rng (Graph.original_capacity g a + 1) in
          Graph.set_flow g a f;
          Csr.set_flow c a f
        | 3 ->
          let side = if Prng.int rng 2 = 0 then a else a + 1 in
          let room = Graph.capacity g side in
          if room > 0 then begin
            let k = 1 + Prng.int rng room in
            Graph.push g side k;
            Csr.push c side k
          end
        | _ ->
          (* freeze/thaw round-trip on a saturated arc. *)
          if Graph.capacity g a = 0 then begin
            Graph.freeze g a;
            Csr.freeze c a;
            if not (Csr.is_frozen c a) then
              QCheck.Test.fail_report "freeze did not mark the pair";
            Graph.thaw g a;
            Csr.thaw c a
          end
      done;
      (match Csr.check_rev_pairing c with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "rev pairing after churn: %s" e);
      agree g c)

(* Frozen arcs must survive the snapshot: of_graph on a graph holding
   frozen flow reproduces the pinned residual state and the flag. *)
let test_frozen_survives_of_graph () =
  let g = Graph.create () in
  let _ = Graph.add_nodes g 3 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~cap:1 in
  let b = Graph.add_arc g ~src:1 ~dst:2 ~cap:2 in
  Graph.push g a 1;
  Graph.push g b 1;
  Graph.freeze g a;
  let c = Csr.of_graph g in
  check Alcotest.(result unit string) "pairing" (Ok ()) (Csr.check_rev_pairing c);
  check Alcotest.bool "frozen flag reconstructed" true (Csr.is_frozen c a);
  check Alcotest.bool "unfrozen arc not flagged" false (Csr.is_frozen c b);
  check Alcotest.int "frozen residual side pinned" 0 (Csr.capacity c (a + 1));
  check Alcotest.int "frozen flow kept" 1 (Csr.flow c a)

(* --- Netgraph emission ---------------------------------------------------- *)

let test_netgraph_emission () =
  List.iter
    (fun ((name, _) as topo) ->
      let _rng, net, requests, free = scenario 17 topo in
      let ng =
        Netgraph.compile net
          ~requests:(List.map (fun p -> (p, 0)) requests)
          ~free:(List.map (fun r -> (r, 0)) free)
      in
      let c = Netgraph.csr ng in
      check Alcotest.(result unit string) (name ^ ": snapshot pairing") (Ok ())
        (Csr.check_rev_pairing c);
      check Alcotest.bool (name ^ ": emission is cached") true
        (Netgraph.csr ng == c);
      let full = Netgraph.compile_full (Network.copy net) in
      let cf = Netgraph.csr full in
      check Alcotest.(result unit string) (name ^ ": full pairing") (Ok ())
        (Csr.check_rev_pairing cf);
      check Alcotest.int (name ^ ": same shape as the graph")
        (Graph.arc_count (Netgraph.graph full))
        (Csr.arc_count cf))
    topologies

(* --- Registry differential: CSR solvers vs their adjacency originals ------ *)

let test_dinic_csr_differential =
  qtest "dinic-csr = dinic on every topology incl. degraded" ~count:80
    QCheck.small_int (fun seed ->
      List.for_all
        (fun ((name, _) as topo) ->
          let _rng, net, requests, free = scenario seed topo in
          let solve s =
            let tr = T1.build net ~requests ~free in
            (T1.solve_with (Solver.get s) tr).T1.allocated
          in
          let reference = solve "dinic" and csr = solve "dinic-csr" in
          if reference <> csr then
            QCheck.Test.fail_reportf "%s seed %d: dinic %d, dinic-csr %d" name
              seed reference csr;
          true)
        topologies)

let test_mincost_csr_differential =
  qtest "mincost-csr = mincost: flow value and total cost" ~count:80
    QCheck.small_int (fun seed ->
      List.for_all
        (fun ((name, _) as topo) ->
          let rng, net, requests, free = scenario seed topo in
          let requests = Workload.with_priorities rng ~levels:4 requests in
          let free = Workload.with_priorities rng ~levels:3 free in
          let tr = T2.build net ~requests ~free in
          let source = T2.source tr and sink = T2.sink tr in
          let run s =
            let module S = (val Solver.get s : Solver.S) in
            let g = Graph.copy (T2.graph tr) in
            let f, _w = S.max_flow g ~source ~sink in
            (f, Graph.total_cost g, Graph.check_conservation g ~source ~sink)
          in
          let f0, c0, k0 = run "mincost" in
          let f1, c1, k1 = run "mincost-csr" in
          if k0 <> Ok () || k1 <> Ok () then
            QCheck.Test.fail_reportf "%s seed %d: conservation broken" name seed;
          if (f0, c0) <> (f1, c1) then
            QCheck.Test.fail_reportf
              "%s seed %d: mincost (%d, %d), mincost-csr (%d, %d)" name seed f0
              c0 f1 c1;
          true)
        topologies)

(* Work records populated consistently: the CSR pair reports the same
   kind of numbers as the originals (same augmentation totals — Dinic
   counts flow units, SSP counts rounds — and nonzero scan work). *)
let test_work_record_consistency () =
  let _rng, net, requests, free = scenario ~faults:false 5 (List.hd topologies) in
  let tr = T1.build net ~requests ~free in
  let g0 = Graph.copy (T1.graph tr) and g1 = Graph.copy (T1.graph tr) in
  let source = T1.source tr and sink = T1.sink tr in
  let module D = (val Solver.get "dinic" : Solver.S) in
  let module DC = (val Solver.get "dinic-csr" : Solver.S) in
  let f0, w0 = D.max_flow g0 ~source ~sink in
  let f1, w1 = DC.max_flow g1 ~source ~sink in
  check Alcotest.int "flow equal" f0 f1;
  check Alcotest.int "augmentations count flow units" f1 w1.Solver.augmentations;
  check Alcotest.bool "phases populated" true (w1.Solver.passes >= 1);
  check Alcotest.bool "arcs scanned populated" true (w1.Solver.arcs_scanned > 0);
  check Alcotest.int "dinic counts the same augmentations" f0
    w0.Solver.augmentations

(* --- Warm churn: Incremental's Csr backend vs Adjacency ------------------- *)

(* Drive one Incremental engine through a random warm churn sequence —
   enables, solves, staggered partial releases — and compare every solve
   against a from-scratch transformation of the same snapshot, mirrored
   on a reference network where the committed circuits are established
   for real. Both backends run the identical sequence, each checked
   against its own reference: tie-broken mappings may diverge between
   backends (leaving different circuits frozen), so their states are not
   directly comparable, but each must stay optimal — allocation count
   and, under Mincost, total served priority — for its own snapshot,
   cycle by cycle. *)
let churn_backend discipline backend net seed rounds =
  let eng = Incremental.create ~discipline ~backend net in
  check Alcotest.bool "backend recorded" true
    (Incremental.backend eng = backend);
  let refnet = Network.copy net in
  let np = Network.n_procs net and nr = Network.n_res net in
  let rng = Prng.create seed in
  let prio = Array.make np 0 in
  let live = ref [] in
  let cycles = ref 0 in
  for round = 1 to rounds do
    let busy_p =
      List.map (fun ((c : Incremental.circuit), _) -> c.Incremental.proc) !live
    and busy_r =
      List.map (fun ((c : Incremental.circuit), _) -> c.Incremental.res) !live
    in
    for p = 0 to np - 1 do
      if not (List.mem p busy_p) then begin
        let on = Prng.float rng 1.0 < 0.5 in
        let y = 1 + Prng.int rng 4 in
        prio.(p) <- y;
        Incremental.set_requesting eng ~priority:y p on
      end
    done;
    for r = 0 to nr - 1 do
      if not (List.mem r busy_r) then
        Incremental.set_resource_free eng r (Prng.float rng 1.0 < 0.6)
    done;
    let result = Incremental.solve eng in
    incr cycles;
    let label what = Printf.sprintf "seed %d round %d: %s" seed round what in
    (* The pre-commit snapshot: pending requests and free resources are
       the switched-on endpoint arcs not held by a live circuit. *)
    let pending =
      List.filter
        (fun p -> Incremental.requesting eng p && not (List.mem p busy_p))
        (List.init np Fun.id)
    and frees =
      List.filter
        (fun r -> Incremental.resource_free eng r && not (List.mem r busy_r))
        (List.init nr Fun.id)
    in
    (match discipline with
    | Incremental.Maxflow ->
      let reference = T1.schedule refnet ~requests:pending ~free:frees in
      check Alcotest.int
        (label "allocation = from-scratch T1")
        reference.T1.allocated
        (List.length result.Incremental.circuits)
    | Incremental.Mincost ->
      let reference =
        T2.schedule refnet
          ~requests:(List.map (fun p -> (p, prio.(p))) pending)
          ~free:(List.map (fun r -> (r, 0)) frees)
      in
      check Alcotest.int
        (label "allocation = from-scratch T2")
        reference.T2.allocated
        (List.length result.Incremental.circuits);
      let served_ref =
        List.fold_left (fun acc (p, _) -> acc + prio.(p)) 0 reference.T2.mapping
      and served_eng =
        List.fold_left
          (fun acc (c : Incremental.circuit) -> acc + prio.(c.Incremental.proc))
          0 result.Incremental.circuits
      in
      check Alcotest.int (label "served priority = from-scratch T2") served_ref
        served_eng);
    check Alcotest.(result unit string) (label "conservation") (Ok ())
      (Incremental.check eng);
    (* Mirror the commits as real circuits on the reference network. *)
    List.iter
      (fun (c : Incremental.circuit) ->
        live := (c, Network.establish refnet c.Incremental.links) :: !live)
      result.Incremental.circuits;
    (* Staggered releases: every third round, free a random subset. *)
    if round mod 3 = 0 then begin
      let keep, drop =
        List.partition (fun _ -> Prng.float rng 1.0 < 0.5) !live
      in
      List.iter
        (fun ((c : Incremental.circuit), id) ->
          Incremental.release eng c;
          Network.release refnet id)
        drop;
      live := keep
    end
  done;
  !cycles

let test_warm_churn_backends () =
  let csr_cycles = ref 0 in
  List.iter
    (fun (_, build) ->
      List.iter
        (fun (discipline, seed) ->
          (* The Csr backend is the subject; a short Adjacency run keeps
             the harness itself honest. *)
          csr_cycles :=
            !csr_cycles
            + churn_backend discipline Incremental.Csr (build ()) seed 60;
          ignore
            (churn_backend discipline Incremental.Adjacency (build ())
               (seed + 100) 15))
        [ (Incremental.Maxflow, 21); (Incremental.Mincost, 22) ])
    [ List.nth topologies 0; List.nth topologies 2; List.nth topologies 3 ];
  check Alcotest.bool "at least 300 warm churn cycles on the Csr backend" true
    (!csr_cycles >= 300)

(* --- Engine-level: --solver dinic-csr under fault churn ------------------- *)

(* The full engine differential of PR 2/PR 4, with the warm loop running
   on the Csr backend (selected through the registry solver name):
   every entered cycle must allocate exactly what a from-scratch
   Scheduler run on the same degraded pre-commit snapshot allocates. *)
let test_engine_csr_differential () =
  let total_cycles = ref 0 in
  List.iter
    (fun (name, build) ->
      List.iter
        (fun seed ->
          let net = build () in
          let base =
            Workload.synthesize ~deadline_slack:25 ~cancel_prob:0.1
              (Prng.create seed) net ~slots:150 ~arrival_prob:0.3
          in
          let sched =
            Fault.inject
              (Prng.create ((seed * 7) + 1))
              net ~horizon:150 ~mtbf:40. ~mttr:12.
          in
          let trace =
            List.stable_sort
              (fun a b ->
                compare (Workload.event_time a) (Workload.event_time b))
              (base @ Workload.fault_events sched)
          in
          let hook snapshot (info : Engine.cycle_info) =
            incr total_cycles;
            let reference =
              Scheduler.schedule snapshot
                ~requests:(List.map Scheduler.request info.Engine.requests)
                ~resources:(List.map Scheduler.resource info.Engine.free)
            in
            check Alcotest.int
              (Printf.sprintf "%s seed %d cycle at t=%d" name seed
                 info.Engine.time)
              reference.Scheduler.allocated info.Engine.allocated
          in
          let config =
            Engine.Config.v ~solver:"dinic-csr" ~transmission_time:2
              ~max_defer:8 ()
          in
          let report = Engine.run ~config ~cycle_hook:hook net trace in
          check Alcotest.bool
            (Printf.sprintf "%s seed %d applied faults" name seed)
            true
            (report.Engine.faults > 0))
        [ 10; 11 ])
    [ List.nth topologies 0; List.nth topologies 2; List.nth topologies 3 ];
  check Alcotest.bool "at least 150 engine differential cycles" true
    (!total_cycles >= 150)

(* Priority discipline through --solver mincost-csr: allocation count
   AND total served priority equal a from-scratch Transformation 2 of
   the same snapshot, cycle by cycle. *)
let test_engine_csr_priority_differential () =
  let total_cycles = ref 0 in
  List.iter
    (fun (name, build) ->
      List.iter
        (fun seed ->
          let net = build () in
          let trace =
            Workload.synthesize ~deadline_slack:25 ~cancel_prob:0.1
              ~priority_levels:4 (Prng.create seed) net ~slots:150
              ~arrival_prob:0.3
          in
          let hook snapshot (info : Engine.cycle_info) =
            incr total_cycles;
            let label what =
              Printf.sprintf "%s seed %d cycle at t=%d: %s" name seed
                info.Engine.time what
            in
            let reference =
              T2.schedule snapshot ~requests:info.Engine.request_priorities
                ~free:(List.map (fun r -> (r, 0)) info.Engine.free)
            in
            check Alcotest.int (label "allocation") reference.T2.allocated
              info.Engine.allocated;
            let served mapping =
              List.fold_left
                (fun acc (p, _) ->
                  acc + List.assoc p info.Engine.request_priorities)
                0 mapping
            in
            check Alcotest.int (label "total priority served")
              (served reference.T2.mapping)
              (served info.Engine.mapping)
          in
          let report =
            Engine.run ~cycle_hook:hook
              ~config:
                (Engine.Config.v ~discipline:Engine.Priority
                   ~solver:"mincost-csr" ~transmission_time:2 ~max_defer:8 ())
              net trace
          in
          check Alcotest.bool
            (Printf.sprintf "%s seed %d allocated something" name seed)
            true
            (report.Engine.allocated > 0))
        [ 10; 11 ])
    [ List.nth topologies 0; List.nth topologies 2 ];
  check Alcotest.bool "at least 150 priority differential cycles" true
    (!total_cycles >= 150)

(* --- Warm-cycle bulk operations ------------------------------------------- *)

let test_commit_release_cycle () =
  let net = Builders.omega 8 in
  let ng = Netgraph.compile_full net in
  let c = Netgraph.csr ng in
  let source = Netgraph.source ng and sink = Netgraph.sink ng in
  let np = Network.n_procs net and nr = Network.n_res net in
  for p = 0 to np - 1 do
    Csr.set_capacity c (Option.get (Netgraph.sp_arc ng p)) 1
  done;
  for r = 0 to nr - 1 do
    Csr.set_capacity c (Option.get (Netgraph.rt_arc ng r)) 1
  done;
  let f = Csr.dinic c ~source ~sink in
  check Alcotest.int "omega routes everything" np f;
  check Alcotest.int "commit returns the committed units" f
    (Csr.commit_new c ~source);
  check Alcotest.bool "endpoint arcs frozen" true
    (Csr.is_frozen c (Option.get (Netgraph.sp_arc ng 0)));
  check Alcotest.int "nothing left to augment" 0 (Csr.dinic c ~source ~sink);
  check Alcotest.int "flow survives the re-solve" f (Csr.flow_value c ~source);
  check Alcotest.(result unit string) "conserved while frozen" (Ok ())
    (Csr.check_conservation c ~source ~sink);
  Csr.release_all c;
  check Alcotest.int "release zeroes the flow" 0 (Csr.flow_value c ~source);
  check Alcotest.(result unit string) "pairing after release" (Ok ())
    (Csr.check_rev_pairing c);
  let again = Csr.dinic c ~source ~sink in
  check Alcotest.int "released capacity re-routes identically" f again

let suite =
  [
    test_of_graph_invariants;
    test_mutation_agreement;
    Alcotest.test_case "frozen arcs survive of_graph" `Quick
      test_frozen_survives_of_graph;
    Alcotest.test_case "Netgraph CSR emission" `Quick test_netgraph_emission;
    test_dinic_csr_differential;
    test_mincost_csr_differential;
    Alcotest.test_case "work records populated consistently" `Quick
      test_work_record_consistency;
    Alcotest.test_case "warm churn: Csr backend = Adjacency backend" `Slow
      test_warm_churn_backends;
    Alcotest.test_case "engine differential via --solver dinic-csr" `Slow
      test_engine_csr_differential;
    Alcotest.test_case "engine priority differential via --solver mincost-csr"
      `Slow test_engine_csr_priority_differential;
    Alcotest.test_case "commit_new/release_all round-trip" `Quick
      test_commit_release_cycle;
  ]
