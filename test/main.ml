let () =
  Alcotest.run "rsin"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("bench_report", Test_bench_report.suite);
      ("flow", Test_flow.suite);
      ("flow2", Test_flow2.suite);
      ("csr", Test_csr.suite);
      ("lp", Test_lp.suite);
      ("topology", Test_topology.suite);
      ("topology2", Test_topology2.suite);
      ("core", Test_core.suite);
      ("netgraph", Test_netgraph.suite);
      ("distributed", Test_distributed.suite);
      ("protocol", Test_protocol.suite);
      ("sim", Test_sim.suite);
      ("engine", Test_engine.suite);
      ("serve", Test_serve.suite);
      ("fault", Test_fault.suite);
      ("hardware", Test_hardware.suite);
      ("gates", Test_gates.suite);
      ("switchbox", Test_switchbox.suite);
      ("queueing", Test_queueing.suite);
      ("taskgraph", Test_taskgraph.suite);
      ("packet", Test_packet.suite);
      ("arbiter", Test_arbiter.suite);
      ("fabric", Test_fabric.suite);
      ("edge", Test_edge.suite);
      ("integration", Test_integration.suite);
      ("balance", Test_balance.suite);
      ("guard", Test_guard.suite);
    ]
