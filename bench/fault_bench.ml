(* E31: the online engine under element faults.

   The same synthetic workload is served at increasing fault churn (a
   seeded MTBF/MTTR renewal process over links, boxes and resource
   ports; mttr = mtbf/4) on three topology families. For each rate the
   engine runs Warm — every fault/repair is an O(1) capacity delta on
   the persistent flow graph followed by a residual re-augmentation —
   and Rebuild, which recompiles the degraded network from scratch every
   cycle. Two invariants are asserted while benching:

   - count parity: at every entered warm cycle, a from-scratch
     Scheduler run on the same degraded pre-commit snapshot allocates
     the same number of requests (the optimality theorems survive on
     the surviving subnetwork);
   - both modes apply the identical fault schedule.

   The reported shape: moderate churn lowers the allocation ratio
   (capacity loss), heavy churn can push it back above the baseline
   because every torn-down victim is re-admitted and allocated again
   against a fixed arrival count; throughout, warm's per-cycle solver
   cost stays well below rebuild's — faults make the network *churn
   more*, which is exactly when rebuilding an almost-unchanged graph
   every cycle is most wasteful. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Scheduler = Rsin_core.Scheduler
module Fault = Rsin_fault.Fault
module Engine = Rsin_engine.Engine
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

(* None = fault-free baseline. *)
let mtbfs = [ None; Some 200.; Some 80.; Some 40.; Some 20. ]

let run ?(quick = false) () =
  let slots = if quick then 120 else 300 in
  let config mode = Engine.Config.v ~mode ~transmission_time:2 ~max_defer:8 () in
  print_endline "E31: online engine under element faults (MTBF/MTTR churn)";
  Printf.printf
    "  (%d arrival slots, arrival 0.3, transmission 2, mttr = mtbf/4, seed 11)\n\n"
    slots;
  let report = Bench_report.create ~quick "engine_faults" in
  List.iter
    (fun (name, net) ->
      Printf.printf "-- %s --\n" name;
      let rows =
        List.map
          (fun mtbf_opt ->
            let base =
              Workload.synthesize ~deadline_slack:60 (Prng.create 11) net
                ~slots ~arrival_prob:0.3
            in
            let trace =
              match mtbf_opt with
              | None -> base
              | Some mtbf ->
                let sched =
                  Fault.inject (Prng.create 23) net ~horizon:slots ~mtbf
                    ~mttr:(mtbf /. 4.)
                in
                List.stable_sort
                  (fun a b ->
                    compare (Workload.event_time a) (Workload.event_time b))
                  (base @ Workload.fault_events sched)
            in
            let hook snapshot (info : Engine.cycle_info) =
              let reference =
                Scheduler.schedule snapshot
                  ~requests:(List.map Scheduler.request info.Engine.requests)
                  ~resources:(List.map Scheduler.resource info.Engine.free)
              in
              assert (reference.Scheduler.allocated = info.Engine.allocated)
            in
            (* One hooked run carries the differential invariant; the
               timed runs drop the hook (a from-scratch Scheduler per
               cycle would dominate the measurement). *)
            let warm =
              Engine.run ~config:(config Engine.Warm) ~cycle_hook:hook net
                trace
            in
            let case =
              Bench_report.case report
                (Printf.sprintf "%s/mtbf=%s" name
                   (match mtbf_opt with
                   | None -> "none"
                   | Some m -> Table.ffix 0 m))
            in
            let timed mode prefix =
              let result = ref None in
              let m =
                Bench_report.measure ~warmup:0 ~runs:2 (fun () ->
                    result := Some (Engine.run ~config:(config mode) net trace))
              in
              Bench_report.record case ~prefix m;
              Option.get !result
            in
            let warm_timed = timed Engine.Warm "warm" in
            let rebuild = timed Engine.Rebuild "rebuild" in
            assert (warm_timed.Engine.solver_work = warm.Engine.solver_work);
            assert (warm.Engine.faults = rebuild.Engine.faults);
            assert (warm.Engine.repairs = rebuild.Engine.repairs);
            Bench_report.record_count case ~name:"faults"
              (float_of_int warm.Engine.faults);
            Bench_report.record_count case ~name:"victims"
              (float_of_int warm.Engine.victims);
            Bench_report.record_count case ~name:"warm.solver_work"
              ~unit_:"arcs"
              (float_of_int warm.Engine.solver_work);
            Bench_report.record_count case ~name:"rebuild.solver_work"
              ~unit_:"arcs"
              (float_of_int rebuild.Engine.solver_work);
            Bench_report.record_count case ~name:"warm.allocated"
              (float_of_int warm.Engine.allocated);
            let ratio (r : Engine.report) =
              float_of_int r.Engine.allocated
              /. float_of_int (max 1 r.Engine.arrivals)
            in
            let per_cycle (r : Engine.report) =
              float_of_int r.Engine.solver_work
              /. float_of_int (max 1 r.Engine.cycles)
            in
            [ (match mtbf_opt with
              | None -> "none"
              | Some m -> Table.ffix 0 m);
              string_of_int warm.Engine.faults;
              string_of_int warm.Engine.victims;
              Table.fpct (ratio warm);
              Table.fpct (ratio rebuild);
              Table.ffix 1 (per_cycle warm);
              Table.ffix 1 (per_cycle rebuild);
              Table.fpct (1. -. per_cycle warm /. per_cycle rebuild) ])
          mtbfs
      in
      Table.print
        ~header:
          [ "mtbf"; "faults"; "victims"; "alloc warm"; "alloc rebuild";
            "warm work/cyc"; "rebuild work/cyc"; "saved" ]
        rows;
      print_newline ())
    [ ("omega:16", Builders.omega 16);
      ("benes:16", Builders.benes 16);
      ("clos:3,2,4", Builders.clos ~m:3 ~n:2 ~r:4) ];
  Printf.printf "  wrote %s\n\n" (Bench_report.write report)
