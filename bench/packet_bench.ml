(* Experiment E24: circuit switching vs packet switching — the paper's
   Section II design argument, measured. Same topology, same task sizes,
   same service law; the packet network binds each task to a free
   resource up front (address mapping) and the resource idles until the
   last packet arrives; the circuit RSIN schedules destination-free
   requests and ties the resource up only for transmission + service.

   Packet mode runs twice: on the buffered VOQ fabric with iSLIP
   arbitration (lib/packet, via the trace-driven Replay layer) and on
   the legacy slot-model Packet_net, kept as a cross-check — both must
   show the same Section-II shape (reserved >> serving as load grows)
   even though their switch models differ. The fabric's numbers land in
   BENCH_packet.json for the [rsin perf] regression gate. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Packet_net = Rsin_sim.Packet_net
module Dynamic = Rsin_sim.Dynamic
module Replay = Rsin_packet.Replay
module Arbiter = Rsin_packet.Arbiter
module Prng = Rsin_util.Prng
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let seed = 777

(* The same Bernoulli arrival / geometric service law Packet_net draws
   internally, materialized as a task trace for the fabric replay. *)
let synthesize rng net ~slots ~arrival ~flits ~mean_service =
  let np = Network.n_procs net in
  let tasks = ref [] in
  for s = 0 to slots - 1 do
    for p = 0 to np - 1 do
      if Prng.bernoulli rng arrival then
        tasks :=
          { Replay.arrival = s; proc = p;
            service = 1 + Prng.geometric rng (1. /. mean_service); flits }
          :: !tasks
    done
  done;
  List.rev !tasks

let packet_vs_circuit ?(quick = false) () =
  let slots = if quick then 2000 else 8000 in
  let warmup = if quick then 400 else 1500 in
  print_endline "== E24: circuit vs packet switching (omega 16, 4-packet tasks) ==";
  let net = Builders.omega 16 in
  let packets = 4 and mean_service = 6. in
  let report = Bench_report.create ~quick "packet" in
  Table.print
    ~header:
      [ "arrival/proc"; "mode"; "throughput"; "serving util"; "reserved util";
        "mean response" ]
    (List.concat_map
       (fun arrival ->
         let case =
           Bench_report.case report
             (Printf.sprintf "arrival=%s" (Table.ffix 2 arrival))
         in
         let tasks =
           synthesize (Prng.create seed) net ~slots ~arrival ~flits:packets
             ~mean_service
         in
         let fb = ref None in
         let m =
           Bench_report.measure ~warmup:0 ~runs:2 (fun () ->
               fb :=
                 Some
                   (Replay.run ~vq_depth:2 ~warmup
                      ~arbiter:(Arbiter.get "islip") (Prng.create seed) net
                      tasks))
         in
         Bench_report.record case ~prefix:"fabric" m;
         let fb = Option.get !fb in
         let pk =
           Packet_net.run (Prng.create seed) net
             { Packet_net.arrival_prob = arrival; packets_per_task = packets;
               mean_service; buffer_capacity = 2; slots; warmup }
         in
         let ck =
           Dynamic.run (Prng.create seed) net
             { Dynamic.arrival_prob = arrival; transmission_time = packets;
               mean_service; slots; warmup }
         in
         Bench_report.record_count case ~name:"fabric.completed"
           (float_of_int fb.Replay.completed);
         Bench_report.record_count case ~name:"fabric.reserved_idle"
           fb.Replay.reserved_idle;
         Bench_report.record_count case ~name:"fabric.conflicts"
           (float_of_int fb.Replay.conflicts);
         Bench_report.record_count case ~name:"slot_model.completed"
           (float_of_int pk.Packet_net.completed);
         Bench_report.record_count case ~name:"circuit.completed"
           (float_of_int ck.Dynamic.completed);
         (* cross-check: both packet models exhibit the Section-II
            reservation overhead — reserved never below serving *)
         assert (
           fb.Replay.reserved_utilization
           >= fb.Replay.serving_utilization -. 1e-9);
         assert (
           pk.Packet_net.reserved_utilization
           >= pk.Packet_net.serving_utilization -. 1e-9);
         (* circuit mode: the resource is held for transmission+service,
            so serving == reserved; response = wait + transmission +
            service *)
         let ck_response =
           ck.Dynamic.mean_wait +. float_of_int packets +. mean_service
         in
         [ [ Table.ffix 3 arrival; "packet/fabric";
             Table.ffix 3 fb.Replay.throughput;
             Table.fpct fb.Replay.serving_utilization;
             Table.fpct fb.Replay.reserved_utilization;
             Table.ffix 1 fb.Replay.mean_response ];
           [ Table.ffix 3 arrival; "packet/slot";
             Table.ffix 3 pk.Packet_net.throughput;
             Table.fpct pk.Packet_net.serving_utilization;
             Table.fpct pk.Packet_net.reserved_utilization;
             Table.ffix 1 pk.Packet_net.mean_response ];
           [ Table.ffix 3 arrival; "circuit";
             Table.ffix 3 ck.Dynamic.throughput;
             Table.fpct ck.Dynamic.resource_utilization;
             Table.fpct ck.Dynamic.resource_utilization;
             Table.ffix 1 ck_response ] ])
       [ 0.01; 0.03; 0.05; 0.07; 0.09 ]);
  print_endline
    "(both packet models exhaust the pool by RESERVATION long before the\n\
    \ resources do useful work - at arrival 0.07 they are reserved near\n\
    \ 100% of the time while serving far less - and response times blow\n\
    \ up, while the circuit-switched RSIN keeps climbing: exactly the\n\
    \ paper's Section II argument for circuit switching)";
  Printf.printf "  wrote %s\n\n" (Bench_report.write report)
