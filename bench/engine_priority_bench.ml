(* E30: warm-started priority discipline vs rebuild-per-cycle.

   The E29 comparison, under the priority discipline: the same
   prioritized synthetic workload is served once with the persistent
   min-cost graph (Warm: priorities ride on the source-arc costs,
   each cycle is one Mincost.augment over the residual graph) and once
   rebuilding Transformation 2 from scratch every cycle (Rebuild:
   network scan + graph build + from-zero successive shortest paths).
   Work units are comparable, as in E29: capacity/cost updates +
   residual arcs scanned for Warm; links scanned + arcs built + arcs
   scanned for Rebuild.

   Unlike E29, the whole-run allocation totals of the two modes are NOT
   asserted equal: per cycle both compute an optimum of the same
   objective (maximum allocation, then maximum total head priority —
   the differential test in test/test_engine.ml pins that on shared
   snapshots), but optimal mappings tie-break differently, the
   trajectories diverge, and totals may drift a little either way. The
   table reports both so the drift is visible next to the work gap. *)

module Builders = Rsin_topology.Builders
module Engine = Rsin_engine.Engine
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let churn_rates = [ 0.02; 0.05; 0.1; 0.3; 0.6 ]

let run ?(quick = false) () =
  let slots = if quick then 150 else 400 in
  let net = Builders.omega 16 in
  let config mode =
    Engine.Config.v ~mode ~discipline:Engine.Priority ~transmission_time:2
      ~max_defer:8 ()
  in
  print_endline "E30: online engine, priority discipline, warm vs rebuild";
  Printf.printf
    "  (omega:16, %d arrival slots, transmission 2, 4 priority levels, seed 11)\n\n"
    slots;
  let report = Bench_report.create ~quick "engine_priority" in
  let rows =
    List.map
      (fun arrival_prob ->
        let trace =
          Workload.synthesize ~deadline_slack:60 ~priority_levels:4
            (Prng.create 11) net ~slots ~arrival_prob
        in
        let case =
          Bench_report.case report (Printf.sprintf "arrival=%.2f" arrival_prob)
        in
        let go mode prefix =
          let result = ref None in
          let m =
            Bench_report.measure ~warmup:1 ~runs:(if quick then 2 else 3)
              (fun () ->
                result := Some (Engine.run ~config:(config mode) net trace))
          in
          Bench_report.record case ~prefix m;
          Option.get !result
        in
        let warm = go Engine.Warm "warm" and rebuild = go Engine.Rebuild "rebuild" in
        Bench_report.record_count case ~name:"warm.solver_work" ~unit_:"arcs"
          (float_of_int warm.Engine.solver_work);
        Bench_report.record_count case ~name:"rebuild.solver_work"
          ~unit_:"arcs"
          (float_of_int rebuild.Engine.solver_work);
        Bench_report.record_count case ~name:"warm.allocated"
          (float_of_int warm.Engine.allocated);
        Bench_report.record_count case ~name:"rebuild.allocated"
          (float_of_int rebuild.Engine.allocated);
        let saved =
          1.
          -. float_of_int warm.Engine.solver_work
             /. float_of_int (max 1 rebuild.Engine.solver_work)
        in
        [ Table.ffix 2 arrival_prob;
          string_of_int warm.Engine.arrivals;
          string_of_int warm.Engine.cycles;
          string_of_int warm.Engine.allocated;
          string_of_int rebuild.Engine.allocated;
          string_of_int warm.Engine.solver_work;
          string_of_int rebuild.Engine.solver_work;
          Table.fpct saved ])
      churn_rates
  in
  Table.print
    ~header:
      [ "arrival"; "arrivals"; "cycles"; "warm alloc"; "rebuild alloc";
        "warm work"; "rebuild work"; "saved" ]
    rows;
  Printf.printf "  wrote %s\n" (Bench_report.write report);
  print_newline ()
