(* E34: the zero-allocation CSR flow core vs the mutable-adjacency core
   on warm scheduling churn.

   Both cores serve the identical deterministic churn schedule over a
   compile_full netgraph — endpoint enables, one warm augmentation, a
   commit freezing the new circuits, and a periodic release-all — the
   exact cycle shape of the online engine. The old core is the pre-CSR
   warm path (Graph capacity writes + Dinic.augment / Mincost.augment +
   Graph.freeze); the CSR core runs the same cycle on Csr's flat int
   arrays. The bench records wall time and minor-heap words for both,
   asserts the two cores commit the same flow on every clean-snapshot
   round (tie-broken mappings may diverge *within* a release period, so
   only period-opening rounds are value-comparable), and proves the
   headline claim with a calibrated Gc.minor_words measurement: one full
   CSR warm period — enables, solves, commits, release — performs
   exactly zero minor-heap allocation, including on the 1024-port
   network. The structured report lands in BENCH_csr.json for the
   [rsin perf] regression gate. *)

module Graph = Rsin_flow.Graph
module Csr = Rsin_flow.Csr
module Dinic = Rsin_flow.Dinic
module Mincost = Rsin_flow.Mincost
module Netgraph = Rsin_core.Netgraph
module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Prng = Rsin_util.Prng
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let seed = 34

(* A deterministic endpoint-churn schedule of [periods] x [period_len]
   rounds. The opening round of each period re-randomizes every endpoint
   (the graph is clean right after the release-all that closed the
   previous period); later rounds only *enable* further endpoints — a
   disable could land on an arc frozen under a live circuit.
   targets.(round).(i) is -1 (leave), 0 (off) or 1 (on). *)
type schedule = {
  rounds : int;
  period_len : int;
  proc_t : int array array;
  res_t : int array array;
}

let make_schedule rng ~np ~nr ~periods ~period_len =
  let rounds = periods * period_len in
  let gen width r =
    Array.init width (fun _ ->
        if r mod period_len = 0 then if Prng.float rng 1.0 < 0.55 then 1 else 0
        else if Prng.float rng 1.0 < 0.2 then 1
        else -1)
  in
  {
    rounds;
    period_len;
    proc_t = Array.init rounds (gen np);
    res_t = Array.init rounds (gen nr);
  }

(* Both runners expose [run_rounds lo hi] over a shared mutable state so
   the allocation probe can time a single period in isolation, plus a
   whole-schedule [run] that resets first (making measured runs
   repeatable) and a per-round [added] log for the differential check. *)

let old_runner ng sched ~mincost ~prio =
  let g = Netgraph.graph ng in
  let source = Netgraph.source ng and sink = Netgraph.sink ng in
  let net = Netgraph.network ng in
  let np = Network.n_procs net and nr = Network.n_res net in
  let sp = Array.init np (fun p -> Option.get (Netgraph.sp_arc ng p)) in
  let rt = Array.init nr (fun r -> Option.get (Netgraph.rt_arc ng r)) in
  let frozen = Array.make (Graph.arc_count g) false in
  let added = Array.make sched.rounds 0 in
  let commit () =
    Graph.iter_forward_arcs g (fun a ->
        if (not frozen.(a / 2)) && Graph.flow g a > 0 then begin
          Graph.freeze g a;
          frozen.(a / 2) <- true
        end)
  in
  let release_all () =
    Graph.iter_forward_arcs g (fun a ->
        if frozen.(a / 2) then begin
          frozen.(a / 2) <- false;
          Graph.thaw g a;
          Graph.set_flow g a 0
        end)
  in
  let reset () =
    release_all ();
    Array.iter (fun a -> Graph.set_capacity g a 0) sp;
    Array.iter (fun a -> Graph.set_capacity g a 0) rt;
    if mincost then Array.iteri (fun p a -> Graph.set_cost g a (-prio.(p))) sp
  in
  let run_rounds lo hi =
    for r = lo to hi do
      let pt = sched.proc_t.(r) and qt = sched.res_t.(r) in
      for p = 0 to np - 1 do
        if pt.(p) >= 0 && Graph.original_capacity g sp.(p) <> pt.(p) then
          Graph.set_capacity g sp.(p) pt.(p)
      done;
      for q = 0 to nr - 1 do
        if qt.(q) >= 0 && Graph.original_capacity g rt.(q) <> qt.(q) then
          Graph.set_capacity g rt.(q) qt.(q)
      done;
      added.(r) <-
        (if mincost then (Mincost.augment g ~source ~sink).Mincost.flow
         else fst (Dinic.augment g ~source ~sink));
      commit ();
      if (r + 1) mod sched.period_len = 0 then release_all ()
    done
  in
  let run () =
    reset ();
    run_rounds 0 (sched.rounds - 1)
  in
  (run, added)

let csr_runner ng sched ~mincost ~prio =
  let c = Netgraph.csr ng in
  let source = Netgraph.source ng and sink = Netgraph.sink ng in
  let net = Netgraph.network ng in
  let np = Network.n_procs net and nr = Network.n_res net in
  let sp = Array.init np (fun p -> Option.get (Netgraph.sp_arc ng p)) in
  let rt = Array.init nr (fun r -> Option.get (Netgraph.rt_arc ng r)) in
  let added = Array.make sched.rounds 0 in
  let reset () =
    Csr.release_all c;
    Array.iter (fun a -> Csr.set_capacity c a 0) sp;
    Array.iter (fun a -> Csr.set_capacity c a 0) rt;
    if mincost then Array.iteri (fun p a -> Csr.set_cost c a (-prio.(p))) sp
  in
  let run_rounds lo hi =
    for r = lo to hi do
      let pt = sched.proc_t.(r) and qt = sched.res_t.(r) in
      for p = 0 to np - 1 do
        if pt.(p) >= 0 && Csr.original_capacity c sp.(p) <> pt.(p) then
          Csr.set_capacity c sp.(p) pt.(p)
      done;
      for q = 0 to nr - 1 do
        if qt.(q) >= 0 && Csr.original_capacity c rt.(q) <> qt.(q) then
          Csr.set_capacity c rt.(q) qt.(q)
      done;
      added.(r) <-
        (if mincost then Csr.mincost c ~source ~sink
         else Csr.dinic c ~source ~sink);
      ignore (Csr.commit_new c ~source);
      if (r + 1) mod sched.period_len = 0 then Csr.release_all c
    done
  in
  let run () =
    reset ();
    run_rounds 0 (sched.rounds - 1)
  in
  (run, run_rounds, added)

(* Calibrated allocation probe: [Gc.minor_words] itself boxes its float
   result, so two back-to-back readings measure that overhead exactly
   (a reading's box is charged to the *next* delta). The net allocation
   of one full CSR warm period must then be zero to the word. *)
let measure_period_alloc run run_rounds period_len =
  run ();
  (* state is clean: the schedule length is a multiple of the period *)
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let overhead = b -. a in
  run_rounds 0 (period_len - 1);
  let c = Gc.minor_words () in
  c -. b -. overhead

let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let run ?(quick = false) () =
  print_endline "== E34: zero-allocation CSR core vs mutable-adjacency core ==";
  Printf.printf
    "  (compile_full warm churn: enable / augment / commit / release-all,\n\
    \   deterministic schedule, seed %d%s)\n\n"
    seed
    (if quick then ", quick" else "");
  let report = Bench_report.create ~quick "csr" in
  let runs = if quick then 2 else 4 in
  let configs =
    [
      ("omega:64", (fun () -> Builders.omega 64), false, (if quick then 3 else 6));
      ( "omega:64/mincost",
        (fun () -> Builders.omega 64),
        true,
        if quick then 3 else 6 );
      ( "clos:8,8,8",
        (fun () -> Builders.clos ~m:8 ~n:8 ~r:8),
        false,
        if quick then 3 else 6 );
      ("omega:1024", (fun () -> Builders.omega 1024), false, (if quick then 2 else 3));
    ]
  in
  let rows =
    List.map
      (fun (name, build, mincost, periods) ->
        let period_len = 4 in
        let rng = Prng.create (Hashtbl.hash (name, seed)) in
        let old_ng = Netgraph.compile_full (build ()) in
        let csr_ng = Netgraph.compile_full (build ()) in
        let net = Netgraph.network old_ng in
        let np = Network.n_procs net and nr = Network.n_res net in
        let sched = make_schedule rng ~np ~nr ~periods ~period_len in
        let prio = Array.init np (fun _ -> 1 + Prng.int rng 4) in
        let old_run, old_added = old_runner old_ng sched ~mincost ~prio in
        let csr_run, csr_rounds, csr_added =
          csr_runner csr_ng sched ~mincost ~prio
        in
        let m_old = Bench_report.measure ~warmup:1 ~runs old_run in
        let m_csr = Bench_report.measure ~warmup:1 ~runs csr_run in
        (* Differential: on every clean-snapshot round the two cores face
           the same network, so the (unique) optimum must agree. *)
        for r = 0 to sched.rounds - 1 do
          if r mod period_len = 0 && old_added.(r) <> csr_added.(r) then begin
            Printf.eprintf "E34 %s: round %d: old %d units, csr %d units\n" name
              r old_added.(r) csr_added.(r);
            assert false
          end
        done;
        let period_alloc =
          measure_period_alloc csr_run csr_rounds period_len
        in
        if period_alloc <> 0. then begin
          Printf.eprintf
            "E34 %s: CSR warm period allocated %.0f minor words (want 0)\n" name
            period_alloc;
          assert false
        end;
        let case = Bench_report.case report name in
        Bench_report.record case ~prefix:"old" m_old;
        Bench_report.record case ~prefix:"csr" m_csr;
        let total a = float_of_int (Array.fold_left ( + ) 0 a) in
        Bench_report.record_count case ~name:"old.committed" ~unit_:"circuits"
          (total old_added);
        Bench_report.record_count case ~name:"csr.committed" ~unit_:"circuits"
          (total csr_added);
        Bench_report.record_count case ~name:"csr.alloc_per_period"
          ~unit_:"words" period_alloc;
        Bench_report.record_count case ~name:"rounds"
          (float_of_int sched.rounds);
        let ow = mean m_old.Bench_report.wall_us
        and cw = mean m_csr.Bench_report.wall_us in
        let oa = mean m_old.Bench_report.minor_words
        and ca = mean m_csr.Bench_report.minor_words in
        let per_cycle x = x /. float_of_int sched.rounds in
        [
          name;
          string_of_int sched.rounds;
          Table.ffix 1 (per_cycle ow);
          Table.ffix 1 (per_cycle cw);
          Table.ffix 2 (ow /. cw);
          Table.ffix 0 (per_cycle oa);
          Table.ffix 0 (per_cycle ca);
          Table.ffix 0 (total csr_added);
        ])
      configs
  in
  Table.print
    ~header:
      [ "net"; "rounds"; "old us/cyc"; "csr us/cyc"; "speedup"; "old w/cyc";
        "csr w/cyc"; "committed" ]
    rows;
  print_newline ();
  print_endline
    "  (checked: clean-round commits identical across cores; one full CSR";
  print_endline
    "   warm period — enables, solves, commits, release — allocates 0 minor";
  print_endline "   words, 1024-port net included)";
  Printf.printf "  wrote %s\n\n" (Bench_report.write report)
