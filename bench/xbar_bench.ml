(* E33: RR vs iSLIP saturation curves on the buffered VOQ packet fabric.

   The classic switch-fabric characterization, run over the paper's
   topologies: every processor offers Bernoulli(load) single-flit tasks
   to uniformly random reachable resources; below saturation the
   delivered throughput tracks the offered load, past it the curve
   flattens at the ceiling the per-box arbiter can sustain. The naive
   round-robin arbiter keeps one box-wide pointer that every box
   advances in lockstep, so under symmetric load the boxes repeat the
   same conflicts cycle after cycle; iSLIP's per-port grant/accept
   pointers desynchronize (they only move on first-iteration accepted
   grants) and recover most of that loss. The bench asserts the
   headline result — iSLIP saturation throughput >= naive RR on
   omega:16 at every load >= 0.8 — and writes the whole curve set as a
   structured BENCH_xbar.json for the [rsin perf] regression gate. *)

module Builders = Rsin_topology.Builders
module Arbiter = Rsin_packet.Arbiter
module Sweep = Rsin_packet.Sweep
module Prng = Rsin_util.Prng
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let seed = 5
let loads = [ 0.2; 0.4; 0.6; 0.8; 0.9; 1.0 ]

let xbar ?(quick = false) () =
  let slots = if quick then 600 else 1500 in
  print_endline "== E33: RR vs iSLIP saturation (VOQ packet fabric) ==";
  Printf.printf "  (vq-depth 4, 1-flit tasks, %d measured slots/point, seed %d)\n\n"
    slots seed;
  let report = Bench_report.create ~quick "xbar" in
  let sweep arb net =
    Sweep.saturation ~vq_depth:4 ~flits:1 ~arbiter:(Arbiter.get arb)
      (Prng.create seed) net ~slots ~loads
  in
  let curves =
    List.map
      (fun (name, net) ->
        Printf.printf "-- %s --\n" name;
        let per_arb =
          List.map
            (fun arb ->
              let case =
                Bench_report.case report (Printf.sprintf "%s/%s" name arb)
              in
              let points = ref [] in
              let m =
                Bench_report.measure ~warmup:0 ~runs:2 (fun () ->
                    points := sweep arb net)
              in
              Bench_report.record case ~prefix:"sweep" m;
              List.iter
                (fun (p : Sweep.point) ->
                  let at metric =
                    Printf.sprintf "load=%s.%s" (Table.ffix 2 p.Sweep.load)
                      metric
                  in
                  Bench_report.record_count case ~name:(at "throughput")
                    ~unit_:"flit/res/slot" p.Sweep.throughput;
                  Bench_report.record_count case ~name:(at "delivered")
                    (float_of_int p.Sweep.delivered_tasks);
                  Bench_report.record_count case ~name:(at "conflicts")
                    (float_of_int p.Sweep.conflicts))
                !points;
              (arb, !points))
            [ "rr"; "islip" ]
        in
        let rr = List.assoc "rr" per_arb and islip = List.assoc "islip" per_arb in
        Table.print
          ~header:
            [ "load"; "rr thpt"; "islip thpt"; "rr delay"; "islip delay";
              "rr confl"; "islip confl" ]
          (List.map2
             (fun (r : Sweep.point) (i : Sweep.point) ->
               [ Table.ffix 2 r.Sweep.load;
                 Table.ffix 4 r.Sweep.throughput;
                 Table.ffix 4 i.Sweep.throughput;
                 Table.ffix 2 r.Sweep.mean_delay;
                 Table.ffix 2 i.Sweep.mean_delay;
                 string_of_int r.Sweep.conflicts;
                 string_of_int i.Sweep.conflicts ])
             rr islip);
        print_newline ();
        (name, per_arb))
      [ ("omega:16", Builders.omega 16);
        ("clos:3,2,4", Builders.clos ~m:3 ~n:2 ~r:4) ]
  in
  (* The acceptance invariant: on omega:16 past the knee (load >= 0.8)
     iSLIP must sustain at least the naive round-robin throughput. *)
  let omega = List.assoc "omega:16" curves in
  let rr = List.assoc "rr" omega and islip = List.assoc "islip" omega in
  List.iter2
    (fun (r : Sweep.point) (i : Sweep.point) ->
      if r.Sweep.load >= 0.8 && i.Sweep.throughput < r.Sweep.throughput then (
        Printf.eprintf
          "E33: islip throughput %.4f < rr %.4f at load %.2f on omega:16\n"
          i.Sweep.throughput r.Sweep.throughput r.Sweep.load;
        assert false))
    rr islip;
  print_endline
    "  (checked: islip >= rr saturation throughput on omega:16 at load >= 0.8)";
  Printf.printf "  wrote %s\n\n" (Bench_report.write report)
