(* E32: the distributed token protocol under mid-cycle faults.

   Every cycle draws a random request/free snapshot and a random
   mid-cycle fault schedule — element deaths (links, boxes, resource
   ports) at random status-bus clocks, mixed with transient stuck-at
   windows on the control bits E3/E4/E6 — and runs the self-recovering
   token protocol on three topology families. Two things are measured
   while a differential invariant is asserted:

   - recovery correctness: every cycle that completes commits an
     allocation equal to centralized Dinic max-flow on the *final*
     degraded subnetwork (the surviving capacity after every death the
     cycle absorbed) — recovery costs clock periods, never allocation;
   - recovery overhead: the clocks the faulted run spends beyond a
     fault-free run on that same degraded subnetwork, i.e. beyond what
     an oracle knowing the final topology would spend. The overhead
     grows roughly linearly in the fault count (each death wastes at
     most one aborted phase plus the re-run), and watchdog fires stay
     confined to the stuck-at windows.

   The sweep keeps stuck windows transient (every forced bit clears a
   few clocks later), so bounded retries always suffice and the
   completion rate stays 100%; permanent stuck-at give-up is pinned by
   the unit tests instead. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Scheduler = Rsin_core.Scheduler
module Fault = Rsin_fault.Fault
module Token_sim = Rsin_distributed.Token_sim
module Bus = Rsin_distributed.Status_bus
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng
module Clock = Rsin_util.Clock
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let fault_counts = [ 0; 1; 2; 4; 8 ]

(* A death of a random element, or (one time in four) a transient
   stuck-at window on a control bit: the schedule gains the force at
   [clk] and the clear a few clocks later. *)
let random_faults g net clk =
  if Prng.int g 4 < 3 then
    let el =
      match Prng.int g 3 with
      | 0 -> Token_sim.Dead_link (Prng.int g (Network.n_links net))
      | 1 -> Token_sim.Dead_box (Prng.int g (Network.n_boxes net))
      | _ -> Token_sim.Dead_res (Prng.int g (Network.n_res net))
    in
    [ (clk, el) ]
  else
    let e =
      match Prng.int g 3 with
      | 0 -> Bus.E3_request_token_phase
      | 1 -> Bus.E4_resource_token_phase
      | _ -> Bus.E6_rs_received_token
    in
    let stuck = if Prng.int g 2 = 0 then Bus.Stuck_at_0 else Bus.Stuck_at_1 in
    [ (clk, Token_sim.Stuck_bit (e, stuck));
      (clk + 3 + Prng.int g 8, Token_sim.Clear_bit e) ]

(* Dinic max-flow on the subnetwork surviving the deaths the cycle
   actually absorbed — the allocation a completed recovery must equal. *)
let reference net ~requests ~free applied =
  let degraded = Network.copy net in
  List.iter
    (fun (_clk, f) ->
      match f with
      | Token_sim.Dead_link l -> Fault.apply degraded (Fault.Link_down l)
      | Token_sim.Dead_box b -> Fault.apply degraded (Fault.Box_down b)
      | Token_sim.Dead_res r -> Fault.apply degraded (Fault.Res_down r)
      | Token_sim.Stuck_bit _ | Token_sim.Clear_bit _ -> ())
    applied;
  let opt =
    Scheduler.schedule degraded
      ~requests:(List.map Scheduler.request requests)
      ~resources:(List.map Scheduler.resource free)
  in
  (degraded, opt.Scheduler.allocated)

let run ?(quick = false) () =
  let cycles = if quick then 40 else 120 in
  print_endline "E32: distributed token protocol under mid-cycle faults";
  Printf.printf
    "  (%d cycles per rate, random snapshots, 3/4 element deaths + 1/4 \
     transient stuck-at windows, seed 7)\n\n"
    cycles;
  let report = Bench_report.create ~quick "protocol" in
  List.iter
    (fun (name, net) ->
      Printf.printf "-- %s --\n" name;
      let rows =
        List.map
          (fun n_faults ->
            let rng = Prng.create 7 in
            let applied = ref 0 and aborts = ref 0 and watchdogs = ref 0 in
            let restarts = ref 0 and retries = ref 0 in
            let overhead = ref 0 and base_clocks = ref 0 in
            let incomplete = ref 0 and allocated = ref 0 and optimum = ref 0 in
            let wall = Array.make cycles 0. in
            let total_clocks = ref 0 in
            for cyc = 0 to cycles - 1 do
              let g = Prng.split rng in
              let requests, free = Workload.snapshot g net in
              let faults =
                List.concat
                  (List.init n_faults (fun _ ->
                       random_faults g net (Prng.int g 60)))
              in
              let rep, us =
                Clock.time_us (fun () -> Token_sim.run net ~requests ~free ~faults)
              in
              wall.(cyc) <- us;
              total_clocks := !total_clocks + rep.Token_sim.total_clocks;
              let r = rep.Token_sim.recovery in
              applied := !applied + r.Token_sim.faults_applied;
              aborts := !aborts + r.Token_sim.iteration_aborts;
              watchdogs := !watchdogs + r.Token_sim.watchdog_fires;
              restarts := !restarts + r.Token_sim.cycle_restarts;
              retries := !retries + r.Token_sim.retries;
              if not r.Token_sim.completed then incr incomplete
              else begin
                let degraded, opt =
                  reference net ~requests ~free rep.Token_sim.applied_faults
                in
                (* The differential invariant of DESIGN 9: a completed
                   cycle is exactly as good as the centralized scheduler
                   on the surviving subnetwork. *)
                assert (rep.Token_sim.allocated = opt);
                allocated := !allocated + rep.Token_sim.allocated;
                optimum := !optimum + opt;
                let oracle = Token_sim.run degraded ~requests ~free in
                overhead :=
                  !overhead
                  + (rep.Token_sim.total_clocks - oracle.Token_sim.total_clocks);
                base_clocks := !base_clocks + oracle.Token_sim.total_clocks
              end
            done;
            let case =
              Bench_report.case report
                (Printf.sprintf "%s/faults=%d" name n_faults)
            in
            Bench_report.record_samples case ~name:"cycle.wall_us"
              ~kind:Bench_report.Time ~unit_:"us" wall;
            Bench_report.record_count case ~name:"total_clocks" ~unit_:"clk"
              (float_of_int !total_clocks);
            Bench_report.record_count case ~name:"faults_applied"
              (float_of_int !applied);
            Bench_report.record_count case ~name:"aborts"
              (float_of_int !aborts);
            Bench_report.record_count case ~name:"watchdog_fires"
              (float_of_int !watchdogs);
            Bench_report.record_count case ~name:"recovery_overhead"
              ~unit_:"clk" (float_of_int !overhead);
            Bench_report.record_count case ~name:"completed"
              (float_of_int (cycles - !incomplete));
            let per_cycle v = float_of_int v /. float_of_int cycles in
            [ string_of_int n_faults;
              Table.ffix 1 (per_cycle !applied);
              Table.ffix 2 (per_cycle !aborts);
              Table.ffix 2 (per_cycle !watchdogs);
              Table.ffix 2 (per_cycle !restarts);
              Table.ffix 2 (per_cycle !retries);
              Table.ffix 1 (per_cycle !overhead);
              Table.fpct
                (float_of_int !overhead /. float_of_int (max 1 !base_clocks));
              Printf.sprintf "%d/%d" (cycles - !incomplete) cycles ])
          fault_counts
      in
      Table.print
        ~header:
          [ "faults"; "applied"; "aborts"; "watchdog"; "restarts"; "retries";
            "overhead clk"; "overhead"; "completed" ]
        rows;
      print_newline ())
    [ ("omega:16", Builders.omega 16);
      ("benes:16", Builders.benes 16);
      ("clos:3,2,4", Builders.clos ~m:3 ~n:2 ~r:4) ];
  Printf.printf "  wrote %s\n\n" (Bench_report.write report)
