(* E36: robustness guard overhead on a fault-free replay.

   The guard layer must be free when nothing is going wrong: on a
   fault-free workload, admission control is one queue-length check per
   arrival, and the retry/quarantine machinery is never entered. The
   same synthetic trace is replayed through the warm engine with the
   guard off and with the default guard policy on; the two runs must
   follow the identical trajectory (all counters equal, nothing shed or
   retried), and the guarded run's min-of-N wall time may exceed the
   unguarded one's by at most 5% — the gate the CI perf check pins via
   BENCH_guard.json. A third, overloaded case (tight queue bound, high
   arrival rate) is recorded for the report but not gated: it measures
   what shedding costs when the guard is actually working. *)

module Builders = Rsin_topology.Builders
module Engine = Rsin_engine.Engine
module Workload = Rsin_sim.Workload
module Policy = Rsin_guard.Policy
module Prng = Rsin_util.Prng
module Clock = Rsin_util.Clock
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let seed = 36
let amin = Array.fold_left min infinity

let run ?(quick = false) () =
  let slots = if quick then 150 else 400 in
  let runs = if quick then 3 else 5 in
  print_endline "== E36: guard overhead on a fault-free replay ==";
  Printf.printf
    "  (omega:32, %d arrival slots, arrival 0.25, seed %d; min of %d runs;\n\
    \   gate: guarded wall <= 1.05x unguarded on the identical trajectory)\n\n"
    slots seed runs;
  let report = Bench_report.create ~quick "guard" in
  let net () = Builders.omega 32 in
  let trace =
    Workload.sort_trace
      (Workload.synthesize ~mean_service:3.0 ~cancel_prob:0.05
         (Prng.create seed) (net ()) ~slots ~arrival_prob:0.25)
  in
  let serve_once cfg =
    let e = Engine.create ~config:cfg (net ()) in
    let t0 = Clock.now_ns () in
    List.iter (Engine.feed e) trace;
    Engine.drain e;
    let wall = Clock.elapsed_us ~since:t0 in
    (Engine.report e, wall)
  in
  let bench name cfg =
    ignore (serve_once cfg) (* warmup *);
    let samples = Array.init runs (fun _ -> serve_once cfg) in
    let walls = Array.map snd samples in
    let r = fst samples.(0) in
    let case = Bench_report.case report name in
    Bench_report.record_samples case ~name:"replay.wall_us"
      ~kind:Bench_report.Time ~unit_:"us" walls;
    Bench_report.record_count case ~name:"completed" ~unit_:"tasks"
      (float_of_int r.Engine.completed);
    Bench_report.record_count case ~name:"shed" ~unit_:"tasks"
      (float_of_int r.Engine.shed);
    Bench_report.record_count case ~name:"solver_work" ~unit_:"arcs"
      (float_of_int r.Engine.solver_work);
    (r, walls)
  in
  let off, w_off = bench "guard-off" (Engine.Config.v ()) in
  let on, w_on =
    bench "guard-on" (Engine.Config.v ~guard:(Some (Policy.v ())) ())
  in
  (* Fault-free: the guard must not perturb the run at all. *)
  if off <> on then begin
    Printf.eprintf "E36: guarded fault-free replay diverged from unguarded\n";
    assert false
  end;
  assert (on.Engine.shed = 0 && on.Engine.retries = 0 && on.Engine.quarantines = 0);
  let overloaded, w_over =
    bench "guard-overloaded"
      (Engine.Config.v
         ~guard:(Some (Policy.v ~queue_bound:2 ~shed_policy:Policy.Deadline_aware ()))
         ())
  in
  ignore overloaded;
  let overhead = (amin w_on /. amin w_off) -. 1.0 in
  Table.print
    ~header:[ "case"; "completed"; "shed"; "min wall (ms)" ]
    [ [ "guard off"; string_of_int off.Engine.completed; "0";
        Table.ffix 2 (amin w_off /. 1e3) ];
      [ "guard on"; string_of_int on.Engine.completed;
        string_of_int on.Engine.shed; Table.ffix 2 (amin w_on /. 1e3) ];
      [ "guard on, overloaded"; string_of_int overloaded.Engine.completed;
        string_of_int overloaded.Engine.shed; Table.ffix 2 (amin w_over /. 1e3) ] ];
  print_newline ();
  if quick then
    Printf.printf
      "  (checked: identical fault-free trajectory; overhead %+.1f%% — 5%% \
       gate skipped in quick mode)\n"
      (100. *. overhead)
  else begin
    if overhead > 0.05 then begin
      Printf.eprintf "E36: guard overhead %.1f%% exceeds the 5%% budget\n"
        (100. *. overhead);
      assert false
    end;
    Printf.printf
      "  (checked: identical fault-free trajectory; guard overhead %+.1f%% \
       within the 5%% budget)\n"
      (100. *. overhead)
  end;
  Printf.printf "  wrote %s\n\n" (Bench_report.write report)
