(* E29: warm-started incremental scheduling vs rebuild-per-cycle.

   The online engine serves the same synthetic workload twice — once
   with the persistent incremental flow graph (Warm) and once rebuilding
   the Transformation-1 network from scratch every cycle (Rebuild) — and
   compares solver work across churn rates. Work is counted in
   comparable units: capacity updates + residual arcs scanned for Warm;
   links scanned by the build + arcs of the built graph + arcs scanned
   by the from-zero solve for Rebuild. Both modes allocate the optimal
   number of requests every cycle (max-flow values are unique), so the
   comparison is pure scheduling cost, not quality.

   The expected shape: the lower the churn, the larger the fraction of
   rebuild work that is pure graph reconstruction of an almost-unchanged
   network, so warm savings grow as arrival rate drops; at high churn
   the gap narrows to the per-cycle rebuild overhead because every cycle
   really has new flow to find. The skipped column counts cycles the
   dirty-flag check answered with zero solver work — nonzero only when a
   non-enabling event (deadline expiry, cancellation, batch wakeup) hits
   a topologically blocked request, which random workloads rarely
   produce (test/test_engine.ml pins that path deterministically). *)

module Builders = Rsin_topology.Builders
module Engine = Rsin_engine.Engine
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let churn_rates = [ 0.02; 0.05; 0.1; 0.3; 0.6 ]

let run ?(quick = false) () =
  let slots = if quick then 150 else 400 in
  let net = Builders.omega 16 in
  let config mode = Engine.Config.v ~mode ~transmission_time:2 ~max_defer:8 () in
  print_endline "E29: online engine, warm start vs rebuild per cycle";
  Printf.printf "  (omega:16, %d arrival slots, transmission 2, seed 11)\n\n"
    slots;
  let report = Bench_report.create ~quick "engine" in
  let rows =
    List.map
      (fun arrival_prob ->
        (* Deadlines give the engine non-enabling events (expiries of
           blocked requests), which is what makes clean-cycle skips
           visible at high churn. *)
        let trace =
          Workload.synthesize ~deadline_slack:60 (Prng.create 11) net ~slots
            ~arrival_prob
        in
        let case =
          Bench_report.case report (Printf.sprintf "arrival=%.2f" arrival_prob)
        in
        let timed mode prefix =
          let result = ref None in
          let m =
            Bench_report.measure ~warmup:1 ~runs:(if quick then 2 else 3)
              (fun () -> result := Some (Engine.run ~config:(config mode) net trace))
          in
          Bench_report.record case ~prefix m;
          Option.get !result
        in
        let warm = timed Engine.Warm "warm" in
        let rebuild = timed Engine.Rebuild "rebuild" in
        assert (warm.Engine.allocated = rebuild.Engine.allocated);
        Bench_report.record_count case ~name:"warm.solver_work" ~unit_:"arcs"
          (float_of_int warm.Engine.solver_work);
        Bench_report.record_count case ~name:"rebuild.solver_work"
          ~unit_:"arcs"
          (float_of_int rebuild.Engine.solver_work);
        Bench_report.record_count case ~name:"allocated"
          (float_of_int warm.Engine.allocated);
        Bench_report.record_count case ~name:"cycles"
          (float_of_int warm.Engine.cycles);
        let saved =
          1.
          -. float_of_int warm.Engine.solver_work
             /. float_of_int (max 1 rebuild.Engine.solver_work)
        in
        [ Table.ffix 2 arrival_prob;
          string_of_int warm.Engine.arrivals;
          string_of_int warm.Engine.cycles;
          string_of_int warm.Engine.skipped_cycles;
          string_of_int warm.Engine.solver_work;
          string_of_int rebuild.Engine.solver_work;
          Table.fpct saved ])
      churn_rates
  in
  Table.print
    ~header:
      [ "arrival"; "arrivals"; "cycles"; "skipped"; "warm work";
        "rebuild work"; "saved" ]
    rows;
  Printf.printf "  wrote %s\n" (Bench_report.write report);
  print_newline ()
