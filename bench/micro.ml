(* Bechamel micro-benchmarks for the core algorithms: one Test.make per
   solver, run on a fixed representative instance (the scheduling problem
   of a loaded 32x32 Omega snapshot). *)

open Bechamel
open Toolkit
module Builders = Rsin_topology.Builders
module T1 = Rsin_core.Transform1
module T2 = Rsin_core.Transform2
module Token_sim = Rsin_distributed.Token_sim
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng

let instance =
  lazy
    (let rng = Prng.create 99 in
     let net = Builders.omega 32 in
     ignore (Workload.preoccupy rng net ~circuits:4);
     let busy_p, busy_r = Workload.occupied_endpoints net in
     let requests, free =
       Workload.snapshot ~req_density:0.7 ~res_density:0.7 rng net
     in
     let requests = List.filter (fun p -> not (List.mem p busy_p)) requests in
     let free = List.filter (fun r -> not (List.mem r busy_r)) free in
     (net, requests, free))

let tests () =
  let net, requests, free = Lazy.force instance in
  let rng = Prng.create 7 in
  let prioritized = Workload.with_priorities rng ~levels:10 requests in
  let preferred = Workload.with_priorities rng ~levels:10 free in
  [
    Test.make ~name:"transform1/dinic" (Staged.stage (fun () ->
        let s = Rsin_flow.Solver.get "dinic" in
        ignore (T1.solve_with s (T1.build net ~requests ~free))));
    Test.make ~name:"transform1/edmonds-karp" (Staged.stage (fun () ->
        let s = Rsin_flow.Solver.get "edmonds-karp" in
        ignore (T1.solve_with s (T1.build net ~requests ~free))));
    Test.make ~name:"transform2/ssp" (Staged.stage (fun () ->
        ignore (T2.schedule ~solver:T2.Ssp net ~requests:prioritized ~free:preferred)));
    Test.make ~name:"transform2/out-of-kilter" (Staged.stage (fun () ->
        ignore
          (T2.schedule ~solver:T2.Out_of_kilter net ~requests:prioritized
             ~free:preferred)));
    Test.make ~name:"distributed/token-sim" (Staged.stage (fun () ->
        ignore (Token_sim.run net ~requests ~free)));
    Test.make ~name:"transform1/push-relabel" (Staged.stage (fun () ->
        let s = Rsin_flow.Solver.get "push-relabel" in
        ignore (T1.solve_with s (T1.build net ~requests ~free))));
    (let net8 = Rsin_topology.Builders.omega_paper 8 in
     let compiled = Rsin_gates.Mrsin_circuit.compile net8 in
     Test.make ~name:"gates/omega8-cycle" (Staged.stage (fun () ->
         ignore
           (Rsin_gates.Mrsin_circuit.run compiled ~requests:[ 0; 2; 4 ]
              ~free:[ 1; 3; 5 ]))));
    (let bnet = Rsin_topology.Builders.benes 16 in
     let perm = Array.init 16 (fun i -> 15 - i) in
     Test.make ~name:"permutation/benes16-looping" (Staged.stage (fun () ->
         ignore (Rsin_topology.Permutation.route bnet perm))));
    (let spec =
       Workload.hetero_spec (Prng.create 3) ~types:2 ~requests ~free
     in
     Test.make ~name:"hetero/simplex-lp" (Staged.stage (fun () ->
         ignore (Rsin_core.Hetero.schedule_lp net spec))));
  ]

let run () =
  print_endline "== Bechamel micro-benchmarks (32x32 Omega snapshot) ==";
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all (Benchmark.cfg ~limit:1000 ~quota ~kde:(Some 1000) ())
      Instance.[ monotonic_clock ]
      test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      let res = analyze results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "  %-28s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
        res)
    (tests ());
  print_newline ()
