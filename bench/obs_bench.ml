(* Overhead of the observability layer.

   The instrumented solvers must stay essentially free when nobody is
   watching: the budget is <= 2% slowdown with a metrics-only observer
   (null trace sink) relative to no observer at all. Three variants of
   the same Dinic scheduling run are timed on the 32x32 Omega snapshot
   the micro-benchmarks use:

     none       ?obs omitted (the default path everywhere)
     null-sink  metrics registry + Trace.null: counters recorded once
                per run, every event dropped without allocating
     recording  metrics + in-memory trace buffer (full tracing)

   The run ends with a smoke test of both trace exporters on the events
   recorded by the third variant. Besides the prose table, the run
   writes BENCH_obs.json: the per-batch timing distributions of all
   three variants plus the dinic work counters the null observer
   accumulated, so the perf gate can watch the overhead trajectory. *)

module Builders = Rsin_topology.Builders
module T1 = Rsin_core.Transform1
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng
module Clock = Rsin_util.Clock
module Obs = Rsin_obs.Obs
module Trace = Rsin_obs.Trace
module Metrics = Rsin_obs.Metrics
module Bench_report = Rsin_obs.Bench_report

let instance =
  lazy
    (let rng = Prng.create 99 in
     let net = Builders.omega 32 in
     ignore (Workload.preoccupy rng net ~circuits:4);
     let busy_p, busy_r = Workload.occupied_endpoints net in
     let requests, free =
       Workload.snapshot ~req_density:0.7 ~res_density:0.7 rng net
     in
     let requests = List.filter (fun p -> not (List.mem p busy_p)) requests in
     let free = List.filter (fun r -> not (List.mem r busy_r)) free in
     (net, requests, free))

(* Time per run over several batches, with the variants interleaved
   batch by batch so clock drift and background load hit all of them
   alike. Returns, per variant, the per-batch us/run samples (the
   minimum is the headline number; the full distribution goes into the
   report). *)
let time_variants ~batches ~iters variants =
  let samples = Array.make (List.length variants) [] in
  for _ = 1 to batches do
    List.iteri
      (fun i f ->
        let t0 = Clock.now_ns () in
        for _ = 1 to iters do
          f ()
        done;
        let us = Clock.elapsed_us ~since:t0 /. float_of_int iters in
        samples.(i) <- us :: samples.(i))
      variants
  done;
  Array.map (fun l -> Array.of_list (List.rev l)) samples

let smoke_test_exporters trace =
  let n = Trace.event_count trace in
  let chrome = Trace.to_string trace ~format:Trace.Chrome in
  let jsonl = Trace.to_string trace ~format:Trace.Jsonl in
  let trimmed = String.trim chrome in
  if not (String.length trimmed >= 2 && trimmed.[0] = '[') then
    failwith "obs_bench: chrome export is not a JSON array";
  if trimmed.[String.length trimmed - 1] <> ']' then
    failwith "obs_bench: chrome export is not a JSON array";
  let jsonl_lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  if List.length jsonl_lines <> n then
    failwith "obs_bench: jsonl export line count mismatch";
  List.iter
    (fun l ->
      if not (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}')
      then failwith "obs_bench: jsonl export line is not a JSON object")
    jsonl_lines;
  Printf.printf
    "  exporters ok: %d events (chrome %d bytes, jsonl %d lines)\n" n
    (String.length chrome) (List.length jsonl_lines)

let run ?(quick = false) () =
  print_endline "== Observability overhead (Dinic on 32x32 Omega snapshot) ==";
  let net, requests, free = Lazy.force instance in
  let baseline () = ignore (T1.schedule net ~requests ~free) in
  let null_obs = Obs.create () in
  let with_null () = ignore (T1.schedule ~obs:null_obs net ~requests ~free) in
  let recording = Obs.recording () in
  let with_rec () = ignore (T1.schedule ~obs:recording net ~requests ~free) in
  let batches = if quick then 4 else 12 in
  let iters = if quick then 15 else 50 in
  for _ = 1 to iters do
    baseline ();
    with_null ();
    with_rec ()
  done;
  let samples =
    time_variants ~batches ~iters [ baseline; with_null; with_rec ]
  in
  let minimum xs = Array.fold_left min infinity xs in
  let t_none = minimum samples.(0)
  and t_null = minimum samples.(1)
  and t_rec = minimum samples.(2) in
  let pct t = (t -. t_none) /. t_none *. 100. in
  Printf.printf "  none        %9.2f us/run\n" t_none;
  Printf.printf "  null-sink   %9.2f us/run  %+6.2f%%  (budget: +2%%)\n" t_null
    (pct t_null);
  Printf.printf "  recording   %9.2f us/run  %+6.2f%%\n" t_rec (pct t_rec);
  if pct t_null > 2. then
    Printf.printf "  WARNING: null-sink overhead above the 2%% budget\n";
  let runs = Metrics.get_counter null_obs.Obs.metrics "flow.dinic.runs" in
  if runs = 0 then failwith "obs_bench: registry recorded no dinic runs";
  smoke_test_exporters recording.Obs.trace;
  let report = Bench_report.create ~quick "obs" in
  let case = Bench_report.case report "dinic_omega32" in
  List.iteri
    (fun i name ->
      Bench_report.record_samples case ~name:(name ^ ".wall_us")
        ~kind:Bench_report.Time ~unit_:"us" samples.(i))
    [ "none"; "null_sink"; "recording" ];
  Bench_report.record_counters case ~prefix:"null." null_obs.Obs.metrics;
  Bench_report.record_count case ~name:"trace.events" ~unit_:"events"
    (float_of_int (Trace.event_count recording.Obs.trace));
  Printf.printf "  wrote %s\n" (Bench_report.write report);
  print_newline ()
