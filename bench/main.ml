(* Benchmark and experiment harness. Running with no arguments
   regenerates every table/figure experiment of EXPERIMENTS.md (E1-E12)
   plus the Bechamel micro-benchmarks. Pass experiment ids to run a
   subset, or "--quick" for a reduced-trial run:

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig2 table2  # selected experiments
     dune exec bench/main.exe -- --quick      # everything, fewer trials *)

let experiments quick =
  let t n = if quick then max 50 (n / 10) else n in
  [
    ("fig2", fun () -> Fig_examples.fig2 ());
    ("fig3_4", fun () -> Fig_examples.fig3_4 ());
    ("fig5", fun () -> Fig_examples.fig5 ());
    ("fig8", fun () -> Fig_examples.fig8 ());
    ("blocking_cube8", fun () -> Blocking_bench.blocking_cube8 ~trials:(t 2000) ());
    ("blocking_omega", fun () -> Blocking_bench.blocking_omega ~trials:(t 1500) ());
    ("distributed", fun () -> Arch_bench.distributed ~trials:(t 500) ());
    ("table2", fun () -> Table2_bench.table2 ~quick ~instances:(t 100) ());
    ("extra_stage", fun () -> Blocking_bench.extra_stage ~trials:(t 1200) ());
    ("occupied", fun () -> Blocking_bench.occupied ~trials:(t 1200) ());
    ("monitor_vs_dist", fun () -> Arch_bench.monitor_vs_dist ~trials:(t 300) ());
    ("scaling", fun () -> Blocking_bench.scaling ~trials:(t 600) ());
    ("diversity", fun () -> Extended_bench.diversity ~trials:(t 800) ());
    ("hardware", fun () -> Extended_bench.hardware ());
    ("batching", fun () -> Extended_bench.batching ());
    ("permutation", fun () -> Extended_bench.permutation ~trials:(t 300) ());
    ("flow_ablation", fun () -> Extended_bench.flow_ablation ~trials:(t 400) ());
    ("gates", fun () -> Gates_bench.gates ~trials:(t 60) ());
    ("analytic", fun () -> Analytic_bench.analytic ());
    ("priority_classes", fun () -> Priority_bench.priority_classes ~trials:(t 1500) ());
    ("hetero_types", fun () -> Priority_bench.hetero_types ~trials:(t 150) ());
    ("faults", fun () -> Priority_bench.faults ~trials:(t 800) ());
    ("concentrator", fun () -> Concentrator_bench.concentrator ~trials:(t 400) ());
    ("packet_vs_circuit", fun () -> Packet_bench.packet_vs_circuit ~quick ());
    ("xbar", fun () -> Xbar_bench.xbar ~quick ());
    ("stress", fun () -> Stress_bench.stress ~quick ~trials:(t 40) ());
    ("load_balance", fun () -> Balance_bench.load_balance ());
    ("calibration", fun () -> Calibration_bench.calibration ~trials:(t 600) ());
    ("placement", fun () -> Placement_bench.placement ~trials:(t 800) ());
    ("obs", fun () -> Obs_bench.run ~quick ());
    ("engine", fun () -> Engine_bench.run ~quick ());
    ("engine_priority", fun () -> Engine_priority_bench.run ~quick ());
    ("engine_faults", fun () -> Fault_bench.run ~quick ());
    ("protocol", fun () -> Protocol_bench.run ~quick ());
    ("csr", fun () -> Csr_bench.run ~quick ());
    ("serve", fun () -> Serve_bench.run ~quick ());
    ("guard", fun () -> Guard_bench.run ~quick ());
    ("micro", fun () -> Micro.run ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let selected = List.filter (fun a -> a <> "--quick") args in
  let exps = experiments quick in
  let to_run =
    if selected = [] then exps
    else
      List.map
        (fun name ->
          match List.assoc_opt name exps with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %s; known: %s\n" name
              (String.concat ", " (List.map fst exps));
            exit 1)
        selected
  in
  print_endline "RSIN reproduction experiment harness";
  print_endline "(Juang & Wah, \"Resource Sharing Interconnection Networks in";
  print_endline " Multiprocessors\"; see EXPERIMENTS.md for the experiment index)";
  print_newline ();
  List.iter (fun (_name, f) -> f ()) to_run
