(* Experiment E8: the paper's Table II, regenerated as a measured
   comparison: every scheduling discipline on a common instance set, with
   its equivalent flow problem, algorithms and observed costs. Each
   discipline's per-instance wall samples and mean allocation go into
   BENCH_table2.json — one case per algorithm row of the table. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module T1 = Rsin_core.Transform1
module T2 = Rsin_core.Transform2
module Hetero = Rsin_core.Hetero
module Token_sim = Rsin_distributed.Token_sim
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng
module Clock = Rsin_util.Clock
module Stats = Rsin_util.Stats
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let seed = 515

(* A Welford accumulator that also keeps the raw samples, so the table
   prints means while the report gets the full distribution. *)
type series = { acc : Stats.accum; mutable samples : float list }

let series () = { acc = Stats.accum (); samples = [] }

let observe s x =
  Stats.observe s.acc x;
  s.samples <- x :: s.samples

let to_array s = Array.of_list (List.rev s.samples)

type instance = {
  net : Network.t;
  requests : int list;
  free : int list;
}

let make_instances n_instances =
  let rng = Prng.create seed in
  let rec go acc k =
    if k = 0 then acc
    else begin
      let net = Builders.omega 16 in
      ignore (Workload.preoccupy rng net ~circuits:(Prng.int rng 3));
      let busy_p, busy_r = Workload.occupied_endpoints net in
      let requests, free =
        Workload.snapshot ~req_density:0.6 ~res_density:0.6 rng net
      in
      let requests = List.filter (fun p -> not (List.mem p busy_p)) requests in
      let free = List.filter (fun r -> not (List.mem r busy_r)) free in
      if requests = [] || free = [] then go acc k
      else go ({ net; requests; free } :: acc) (k - 1)
    end
  in
  go [] n_instances

let table2 ?(quick = false) ?(instances = 100) () =
  print_endline "== E8 (Table II): scheduling disciplines side by side ==";
  let insts = make_instances instances in
  let rng = Prng.create (seed + 1) in
  (* attach priorities and types deterministically per instance *)
  let prioritized =
    List.map
      (fun i ->
        ( i,
          List.map (fun p -> (p, 1 + Prng.int rng 10)) i.requests,
          List.map (fun r -> (r, 1 + Prng.int rng 10)) i.free ))
      insts
  in
  let hetero_specs =
    List.map
      (fun i -> (i, Workload.hetero_spec rng ~types:2 ~requests:i.requests ~free:i.free))
      insts
  in
  let alloc = Stats.accum () and t_ff = series () and t_dinic = series ()
  and t_token = series () in
  List.iter
    (fun i ->
      let ek = Rsin_flow.Solver.get "edmonds-karp"
      and dinic = Rsin_flow.Solver.get "dinic" in
      let o, us =
        Clock.time_us (fun () ->
            T1.solve_with ek
              (T1.build i.net ~requests:i.requests ~free:i.free))
      in
      observe t_ff us;
      Stats.observe alloc (float_of_int o.T1.allocated);
      let _, us = Clock.time_us (fun () ->
          T1.solve_with dinic
            (T1.build i.net ~requests:i.requests ~free:i.free)) in
      observe t_dinic us;
      let _, us = Clock.time_us (fun () -> Token_sim.run i.net ~requests:i.requests
                               ~free:i.free) in
      observe t_token us)
    insts;
  let alloc2 = Stats.accum () and cost2 = Stats.accum () and t_ssp = series ()
  and t_ook = series () in
  List.iter
    (fun (i, reqs, frees) ->
      let o, us =
        Clock.time_us (fun () -> T2.schedule ~solver:T2.Ssp i.net ~requests:reqs ~free:frees)
      in
      observe t_ssp us;
      Stats.observe alloc2 (float_of_int o.T2.allocated);
      Stats.observe cost2 (float_of_int o.T2.allocation_cost);
      let o', us =
        Clock.time_us (fun () ->
            T2.schedule ~solver:T2.Out_of_kilter i.net ~requests:reqs ~free:frees)
      in
      observe t_ook us;
      assert (o'.T2.allocated = o.T2.allocated))
    prioritized;
  let alloc3 = Stats.accum () and t_lp = series () and t_greedy = series ()
  and greedy_alloc = Stats.accum () and integral = ref 0 in
  List.iter
    (fun (i, spec) ->
      let o, us = Clock.time_us (fun () -> Hetero.schedule_lp i.net spec) in
      observe t_lp us;
      Stats.observe alloc3 (float_of_int o.Hetero.allocated);
      if o.Hetero.integral then incr integral;
      let g, us = Clock.time_us (fun () -> Hetero.schedule_greedy i.net spec) in
      observe t_greedy us;
      Stats.observe greedy_alloc (float_of_int g.Hetero.allocated))
    hetero_specs;
  Table.print
    ~header:
      [ "discipline"; "equivalent flow problem"; "algorithm"; "mean allocated";
        "mean time (us)" ]
    [
      [ "homogeneous, no priority"; "maximum flow"; "Ford-Fulkerson (EK)";
        Table.ffix 2 (Stats.mean alloc); Table.ffix 0 (Stats.mean t_ff.acc) ];
      [ "homogeneous, no priority"; "maximum flow"; "Dinic";
        Table.ffix 2 (Stats.mean alloc); Table.ffix 0 (Stats.mean t_dinic.acc) ];
      [ "homogeneous, no priority"; "maximum flow"; "distributed tokens";
        Table.ffix 2 (Stats.mean alloc); Table.ffix 0 (Stats.mean t_token.acc) ];
      [ "priority & preference"; "min-cost flow"; "successive shortest paths";
        Table.ffix 2 (Stats.mean alloc2); Table.ffix 0 (Stats.mean t_ssp.acc) ];
      [ "priority & preference"; "min-cost flow"; "out-of-kilter";
        Table.ffix 2 (Stats.mean alloc2); Table.ffix 0 (Stats.mean t_ook.acc) ];
      [ "heterogeneous (2 types)"; "multicommodity max flow"; "simplex LP";
        Table.ffix 2 (Stats.mean alloc3); Table.ffix 0 (Stats.mean t_lp.acc) ];
      [ "heterogeneous (2 types)"; "multicommodity max flow"; "greedy sequential";
        Table.ffix 2 (Stats.mean greedy_alloc); Table.ffix 0 (Stats.mean t_greedy.acc) ];
    ];
  let report = Bench_report.create ~quick "table2" in
  List.iter
    (fun (case_name, s, mean_alloc) ->
      let case = Bench_report.case report case_name in
      Bench_report.record_samples case ~name:"wall_us"
        ~kind:Bench_report.Time ~unit_:"us" (to_array s);
      Bench_report.record_count case ~name:"mean_allocated" mean_alloc)
    [ ("edmonds_karp", t_ff, Stats.mean alloc);
      ("dinic", t_dinic, Stats.mean alloc);
      ("token", t_token, Stats.mean alloc);
      ("ssp", t_ssp, Stats.mean alloc2);
      ("out_of_kilter", t_ook, Stats.mean alloc2);
      ("lp", t_lp, Stats.mean alloc3);
      ("greedy", t_greedy, Stats.mean greedy_alloc) ];
  Printf.printf "  wrote %s\n" (Bench_report.write report);
  Printf.printf
    "LP optima integral on %d/%d instances (paper: restricted topologies give\n\
     integral multicommodity optima); mean prioritized allocation cost %.1f\n\n"
    !integral (List.length hetero_specs) (Stats.mean cost2)
