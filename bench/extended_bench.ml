(* Extended experiments beyond the paper's own evaluation: E13 path
   diversity across the surveyed topologies, E14 the hardware cost model
   behind Section IV-B's "low gate count" claim, E15 the batching policy
   of the Fig. 10 discussion, and E16 Benes rearrangeable routing vs the
   flow scheduler. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Properties = Rsin_topology.Properties
module Permutation = Rsin_topology.Permutation
module Hardware = Rsin_distributed.Hardware
module Blocking = Rsin_sim.Blocking
module Dynamic = Rsin_sim.Dynamic
module T1 = Rsin_core.Transform1
module Prng = Rsin_util.Prng
module Stats = Rsin_util.Stats
module Table = Rsin_util.Table

let seed = 808

(* E13: path diversity is the structural quantity behind the paper's
   extra-stage remark — the more alternative paths, the less an optimal
   mapping matters. Blocking of the naive address-mapped router tracks
   diversity across topologies. *)
let diversity ?(trials = 800) () =
  print_endline "== E13: path diversity vs naive-routing blocking ==";
  let nets =
    [ (fun () -> Builders.omega 8); (fun () -> Builders.flip 8);
      (fun () -> Builders.baseline 8); (fun () -> Builders.butterfly 8);
      (fun () -> Builders.extra_stage_omega 8 ~extra:1);
      (fun () -> Builders.extra_stage_omega 8 ~extra:2);
      (fun () -> Builders.clos ~m:2 ~n:2 ~r:4);
      (fun () -> Builders.clos ~m:3 ~n:2 ~r:4);
      (fun () -> Builders.adm 8); (fun () -> Builders.gamma 8);
      (fun () -> Builders.benes 8) ]
  in
  let cfg =
    { Blocking.trials; req_density = 1.0; res_density = 1.0; pre_circuits = 0 }
  in
  Table.print
    ~header:
      [ "network"; "stages"; "links"; "paths/pair (mean)"; "paths (min)";
        "address-map blocking"; "optimal blocking" ]
    (List.map
       (fun make ->
         let net = make () in
         let b s =
           (Blocking.estimate ~config:cfg ~scheduler:s (Prng.create seed) make)
             .Blocking.mean_blocking
         in
         [ Network.name net;
           string_of_int (Network.stages net);
           string_of_int (Network.n_links net);
           Table.ffix 2 (Properties.path_diversity net);
           string_of_int (Properties.min_path_diversity net);
           Table.fpct (b Blocking.Address_map);
           Table.fpct (b Blocking.Optimal) ])
       nets);
  print_endline
    "(monotone: more alternative paths -> naive routing loses less; the\n\
    \ optimal scheduler is insensitive to diversity on a free network)";
  print_newline ()

(* E14: hardware inventory of the distributed architecture. *)
let hardware () =
  print_endline "== E14: hardware cost model (Section IV-B claims) ==";
  Table.print
    ~header:
      [ "network"; "boxes"; "NS flip-flops/box"; "total flip-flops";
        "total gate equiv"; "bus bits"; "monitor state (words)" ]
    (List.map
       (fun n ->
         let net = Builders.omega n in
         let per_box = Hardware.ns_cost ~fan_in:2 ~fan_out:2 in
         let total = Hardware.network_cost net in
         [ Printf.sprintf "omega %d" n;
           string_of_int (Network.n_boxes net);
           string_of_int per_box.Hardware.flip_flops;
           string_of_int total.Hardware.flip_flops;
           string_of_int total.Hardware.gate_equivalents;
           "7";
           string_of_int (Hardware.monitor_state_words net) ])
       [ 8; 16; 32; 64; 128 ]);
  print_endline
    "(per-box cost is constant — 13 flip-flops for a 2x2 switchbox — and the\n\
    \ status bus stays 7 bits at any size: the modularity claim of Section IV)";
  print_newline ()

(* E15: batching policy ablation — waiting for k pending requests before
   entering a scheduling cycle (the paper's remedy for cycling between
   states 4 and 5 of Fig. 10). *)
let batching () =
  print_endline "== E15: scheduling-cycle batching policy (Fig. 10 states 4-5) ==";
  let params =
    { Dynamic.arrival_prob = 0.15; transmission_time = 1; mean_service = 4.;
      slots = 6000; warmup = 1000 }
  in
  Table.print
    ~header:
      [ "cycle threshold"; "cycles run"; "futile cycles"; "throughput";
        "mean wait"; "PU utilization" ]
    (List.map
       (fun k ->
         let m =
           Dynamic.run ~cycle_threshold:k (Prng.create seed) (Builders.omega 16)
             params
         in
         [ string_of_int k;
           string_of_int m.Dynamic.cycles_run;
           Table.fpct m.Dynamic.futile_cycle_fraction;
           Table.ffix 3 m.Dynamic.throughput;
           Table.ffix 2 m.Dynamic.mean_wait;
           Table.fpct m.Dynamic.resource_utilization ])
       [ 1; 2; 3; 4; 6 ]);
  print_endline
    "(larger thresholds cut the number of scheduling cycles at the price of\n\
    \ waiting time; throughput holds until the threshold starves the pool)";
  print_newline ()

(* E16: rearrangeable routing. Given a FIXED permutation (an
   address-mapped workload), a unique-path Omega realizes only a
   fraction of it, while the Benes network realizes all of it via the
   looping algorithm; the flow scheduler on the Benes network also finds
   a full mapping when the pairing is left free. *)
let permutation ?(trials = 300) () =
  print_endline "== E16: fixed permutations: Omega vs Benes (looping algorithm) ==";
  let rng = Prng.create seed in
  let rows =
    List.map
      (fun n ->
        let omega_frac = Stats.accum () in
        let benes_ok = ref 0 in
        for _ = 1 to trials do
          let perm = Array.init n Fun.id in
          Prng.shuffle rng perm;
          (* Omega: route each fixed pair greedily (unique paths). *)
          let net = Builders.omega n in
          let routed = ref 0 in
          Array.iteri
            (fun p r ->
              match Builders.route_unique net ~proc:p ~res:r with
              | Some links ->
                ignore (Network.establish net links);
                incr routed
              | None -> ())
            perm;
          Stats.observe omega_frac (float_of_int !routed /. float_of_int n);
          (* Benes: looping algorithm must realize everything. *)
          let bnet = Builders.benes n in
          let circuits = Permutation.route bnet perm in
          List.iter (fun links -> ignore (Network.establish bnet links)) circuits;
          if List.length circuits = n then incr benes_ok
        done;
        [ string_of_int n;
          Table.fpct (Stats.mean omega_frac);
          Printf.sprintf "%d/%d" !benes_ok trials ])
      [ 8; 16; 32 ]
  in
  Table.print
    ~header:
      [ "ports"; "omega: mean fraction routed"; "benes: full permutations routed" ]
    rows;
  (* and the flow scheduler on benes with free pairing is also perfect *)
  let net = Builders.benes 16 in
  let all = List.init 16 Fun.id in
  let o = T1.schedule net ~requests:all ~free:all in
  Printf.printf
    "flow scheduler on benes16, pairing free: %d/16 allocated (rearrangeable)\n\n"
    o.T1.allocated

(* E17: max-flow algorithm ablation inside Transformation 1 — every
   solver in the registry runs the same instances. *)
let flow_ablation ?(trials = 400) () =
  print_endline "== E17: max-flow algorithm ablation (Transformation 1) ==";
  let rng = Prng.create seed in
  let accs = List.map (fun s -> (s, Stats.accum ())) Rsin_flow.Solver.all in
  let agree = ref 0 and used = ref 0 in
  let time = Rsin_util.Clock.time_us in
  for _ = 1 to trials do
    let net = Builders.omega 32 in
    ignore (Rsin_sim.Workload.preoccupy rng net ~circuits:(Prng.int rng 4));
    let busy_p, busy_r = Rsin_sim.Workload.occupied_endpoints net in
    let requests, free =
      Rsin_sim.Workload.snapshot ~req_density:0.7 ~res_density:0.7 rng net
    in
    let requests = List.filter (fun p -> not (List.mem p busy_p)) requests in
    let free = List.filter (fun r -> not (List.mem r busy_r)) free in
    if requests <> [] && free <> [] then begin
      incr used;
      let allocs =
        List.map
          (fun (s, acc) ->
            let o, us =
              time (fun () -> T1.solve_with s (T1.build net ~requests ~free))
            in
            Stats.observe acc us;
            o.T1.allocated)
          accs
      in
      match allocs with
      | a0 :: rest when List.for_all (fun a -> a = a0) rest -> incr agree
      | _ -> ()
    end
  done;
  Table.print
    ~header:[ "solver"; "mean time (us)"; "agreement" ]
    (List.mapi
       (fun i (s, acc) ->
         let module S = (val s : Rsin_flow.Solver.S) in
         [ S.name;
           Table.ffix 0 (Stats.mean acc);
           (if i = 0 then Printf.sprintf "%d/%d" !agree !used else "") ])
       accs);
  print_endline
    "(at MRSIN sizes the transformation dominates; the paper's choice of\n\
    \ Dinic is vindicated but not critical)";
  print_newline ()
