(* E35: sharded multicore serve throughput vs domain count.

   One synthetic workload over a 1024-port network of four disjoint
   omega:256 planes (multi:4:omega:256) is served three times — with a
   domain pool of 1, 2 and 4 — and the feed-to-drain wall time of each
   run is recorded. Because the shard layout (and with it every routing
   and borrowing decision) is independent of the pool size, the three
   runs must produce identical deterministic counters: the bench asserts
   events, allocations, borrows, starvations, cycles and solver work all
   agree before comparing any clock. On a machine with at least four
   cores (and outside --quick) it then asserts the headline scaling
   claim: serving with 4 domains is at least 2x faster than with 1.
   The structured report lands in BENCH_serve.json for the [rsin perf]
   regression gate. *)

module Network = Rsin_topology.Network
module Builders = Rsin_topology.Builders
module Workload = Rsin_sim.Workload
module Engine = Rsin_engine.Engine
module Serve = Rsin_engine.Serve
module Prng = Rsin_util.Prng
module Clock = Rsin_util.Clock
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let seed = 35
let planes = 4
let ports_per_plane = 256

let ok = function
  | Ok v -> v
  | Error e -> failwith ("E35: " ^ e)

let amin = Array.fold_left min infinity
let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let run ?(quick = false) () =
  print_endline "== E35: sharded serve throughput vs domain count ==";
  Printf.printf
    "  (multi:%d:omega:%d — %d ports; one trace served at --domains 1/2/4,\n\
    \   seed %d%s; this machine recommends %d domain(s))\n\n"
    planes ports_per_plane
    (planes * ports_per_plane)
    seed
    (if quick then ", quick" else "")
    (Domain.recommended_domain_count ());
  let report = Bench_report.create ~quick "serve" in
  let slots = if quick then 10 else 40 in
  let runs = if quick then 2 else 3 in
  let net () = Builders.multiplane ~planes (Builders.omega ports_per_plane) in
  let trace =
    Workload.sort_trace
      (Workload.synthesize
         (Prng.create seed)
         (net ())
         ~slots ~arrival_prob:0.12)
  in
  let n_events = List.length trace in
  let config = Engine.Config.default in
  (* Feed-to-drain wall time: network construction and per-shard engine
     compilation are identical at every domain count, so timing from the
     first event isolates the part the pool actually parallelizes. *)
  let serve_once d =
    let s = ok (Serve.create ~config ~domains:d (net ())) in
    let t0 = Clock.now_ns () in
    List.iter (Serve.feed s) trace;
    Serve.drain s;
    let wall = Clock.elapsed_us ~since:t0 in
    (Serve.report s, wall)
  in
  let results =
    List.map
      (fun d ->
        ignore (serve_once d) (* warmup *);
        let reports = Array.init runs (fun _ -> serve_once d) in
        let walls = Array.map snd reports in
        (d, fst reports.(0), walls))
      [ 1; 2; 4 ]
  in
  (* The allocation trajectory must not depend on the pool size. *)
  let _, r1, _ = List.hd results in
  List.iter
    (fun (d, r, _) ->
      let open Serve in
      if
        (r.events, r.allocated, r.borrows, r.starved, r.cycles, r.solver_work)
        <> ( r1.events,
             r1.allocated,
             r1.borrows,
             r1.starved,
             r1.cycles,
             r1.solver_work )
      then begin
        Printf.eprintf
          "E35: domains=%d diverged from domains=1 (allocated %d vs %d)\n" d
          r.allocated r1.allocated;
        assert false
      end)
    results;
  let rows =
    List.map
      (fun (d, r, walls) ->
        let case = Bench_report.case report (Printf.sprintf "domains=%d" d) in
        Bench_report.record_samples case ~name:"serve.wall_us"
          ~kind:Bench_report.Time ~unit_:"us" walls;
        Bench_report.record_count case ~name:"events" ~unit_:"events"
          (float_of_int r.Serve.events);
        Bench_report.record_count case ~name:"allocated" ~unit_:"circuits"
          (float_of_int r.Serve.allocated);
        Bench_report.record_count case ~name:"borrowed" ~unit_:"tasks"
          (float_of_int r.Serve.borrows);
        Bench_report.record_count case ~name:"starved" ~unit_:"tasks"
          (float_of_int r.Serve.starved);
        Bench_report.record_count case ~name:"cycles" ~unit_:"cycles"
          (float_of_int r.Serve.cycles);
        Bench_report.record_count case ~name:"solver_work" ~unit_:"arcs"
          (float_of_int r.Serve.solver_work);
        Bench_report.record_count case ~name:"shards"
          (float_of_int r.Serve.shards);
        let w = mean walls in
        let _, _, w1 = List.hd results in
        [
          string_of_int d;
          string_of_int r.Serve.shards;
          string_of_int r.Serve.events;
          string_of_int r.Serve.allocated;
          Table.ffix 1 (w /. 1e3);
          Table.ffix 0 (float_of_int n_events /. (w /. 1e6));
          Table.ffix 2 (amin w1 /. amin walls);
        ])
      results
  in
  Table.print
    ~header:
      [ "domains"; "shards"; "events"; "allocated"; "ms/run"; "events/s";
        "speedup" ]
    rows;
  print_newline ();
  let _, _, w1 = List.hd results in
  let _, _, w4 = List.nth results 2 in
  let speedup = amin w1 /. amin w4 in
  let cores = Domain.recommended_domain_count () in
  if (not quick) && cores >= 4 then begin
    if speedup < 2.0 then begin
      Printf.eprintf
        "E35: 4-domain serve only %.2fx faster than 1-domain (want >= 2x)\n"
        speedup;
      assert false
    end;
    Printf.printf
      "  (checked: identical counters at every domain count; 4 domains\n\
      \   %.2fx faster than 1 — the >= 2x scaling gate holds)\n"
      speedup
  end
  else
    Printf.printf
      "  (checked: identical counters at every domain count; >= 2x scaling\n\
      \   gate skipped — %s)\n"
      (if quick then "quick mode" else Printf.sprintf "only %d core(s)" cores);
  Printf.printf "  wrote %s\n\n" (Bench_report.write report)
