(* Experiment E25: solver scaling with network size. The paper quotes
   O(|V|^(2/3) |E|) for Dinic on the unit-capacity transformed networks;
   this measures wall-clock growth up to 256-port Omegas and checks that
   allocation quality is size-independent. Per-trial wall samples (one
   per random snapshot) go into BENCH_stress.json so the perf gate can
   watch the scaling curve, not just its mean. *)

module Builders = Rsin_topology.Builders
module Network = Rsin_topology.Network
module T1 = Rsin_core.Transform1
module Token_sim = Rsin_distributed.Token_sim
module Workload = Rsin_sim.Workload
module Prng = Rsin_util.Prng
module Clock = Rsin_util.Clock
module Stats = Rsin_util.Stats
module Table = Rsin_util.Table
module Bench_report = Rsin_obs.Bench_report

let seed = 31337

let stress ?(quick = false) ?(trials = 40) () =
  print_endline "== E25: solver scaling up to 256-port networks ==";
  let report = Bench_report.create ~quick "stress" in
  Table.print
    ~header:
      [ "network"; "links"; "build+Dinic (us)"; "token sim (us)";
        "mean allocated"; "blocking" ]
    (List.map
       (fun n ->
         let rng = Prng.create seed in
         let t_flow = ref [] and t_tok = ref [] in
         let alloc = Stats.accum () and blocking = Stats.accum () in
         let net = Builders.omega n in
         for _ = 1 to trials do
           let requests, free =
             Workload.snapshot ~req_density:0.7 ~res_density:0.7 rng net
           in
           if requests <> [] && free <> [] then begin
             let o, us =
               Clock.time_us (fun () -> T1.schedule net ~requests ~free)
             in
             t_flow := us :: !t_flow;
             Stats.observe alloc (float_of_int o.T1.allocated);
             let bound = min (List.length requests) (List.length free) in
             Stats.observe blocking
               (float_of_int (bound - o.T1.allocated) /. float_of_int bound);
             if n <= 64 then begin
               let _, us =
                 Clock.time_us (fun () -> Token_sim.run net ~requests ~free)
               in
               t_tok := us :: !t_tok
             end
           end
         done;
         let flow_us = Array.of_list (List.rev !t_flow) in
         let tok_us = Array.of_list (List.rev !t_tok) in
         let mean xs =
           Array.fold_left ( +. ) 0. xs /. float_of_int (max 1 (Array.length xs))
         in
         let case = Bench_report.case report (Printf.sprintf "omega=%d" n) in
         Bench_report.record_samples case ~name:"flow.wall_us"
           ~kind:Bench_report.Time ~unit_:"us" flow_us;
         if Array.length tok_us > 0 then
           Bench_report.record_samples case ~name:"token.wall_us"
             ~kind:Bench_report.Time ~unit_:"us" tok_us;
         Bench_report.record_count case ~name:"links"
           (float_of_int (Network.n_links net));
         Bench_report.record_count case ~name:"mean_allocated"
           (Stats.mean alloc);
         [ Printf.sprintf "omega %d" n;
           string_of_int (Network.n_links net);
           Table.ffix 0 (mean flow_us);
           (if n <= 64 then Table.ffix 0 (mean tok_us) else "-");
           Table.ffix 1 (Stats.mean alloc);
           Table.fpct (Stats.mean blocking) ])
       [ 16; 32; 64; 128; 256 ]);
  print_endline
    "(near-linear wall-clock growth in the link count; blocking vanishes as\n\
    \ the network grows at fixed density, consistent with E12)";
  Printf.printf "  wrote %s\n" (Bench_report.write report);
  print_newline ()
